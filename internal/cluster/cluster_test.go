package cluster

import (
	"bytes"
	"testing"

	"nodesampling/internal/netgossip"
	"nodesampling/internal/shard"
)

func testCluster(t *testing.T, members []string, self string, fallback func([]uint64)) *Cluster {
	t.Helper()
	if fallback == nil {
		fallback = func([]uint64) {}
	}
	c, err := New(Config{Members: members, Self: self, Seed: 7, Fallback: fallback})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestTableDeterministicAcrossOrderings pins the cluster routing contract:
// every member must derive the identical slot table no matter what order
// its -members flag listed the addresses in, because the list is sorted
// before keys are derived. A single disagreeing slot would make two members
// claim (or disclaim) the same ids forever.
func TestTableDeterministicAcrossOrderings(t *testing.T) {
	members := []string{"10.0.0.1:7947", "10.0.0.2:7947", "10.0.0.3:7947"}
	shuffled := []string{"10.0.0.3:7947", "10.0.0.1:7947", "10.0.0.2:7947"}
	a := testCluster(t, members, members[0], nil)
	b := testCluster(t, shuffled, members[2], nil)
	if a.SelfIndex() != 0 || b.SelfIndex() != 2 {
		t.Fatalf("self indices %d, %d — sorting broke identity", a.SelfIndex(), b.SelfIndex())
	}
	for slot := 0; slot < shard.PlacementSlots; slot++ {
		if a.SlotOwner(slot) != b.SlotOwner(slot) {
			t.Fatalf("slot %d owned by %d on a, %d on b", slot, a.SlotOwner(slot), b.SlotOwner(slot))
		}
	}
	for id := uint64(1); id <= 4096; id++ {
		if a.OwnerOf(id) != b.OwnerOf(id) {
			t.Fatalf("id %d routed to %d on a, %d on b", id, a.OwnerOf(id), b.OwnerOf(id))
		}
		if a.SlotOwner(a.SlotOf(id)) != a.OwnerOf(id) {
			t.Fatalf("id %d: SlotOf/SlotOwner disagree with OwnerOf", id)
		}
	}
	// The salt depends on membership: a different member set must route
	// differently (otherwise an id's placement would leak across clusters
	// sharing a seed).
	c := testCluster(t, []string{"10.9.9.1:7947", "10.9.9.2:7947", "10.9.9.3:7947"}, "10.9.9.1:7947", nil)
	same := 0
	for id := uint64(1); id <= 4096; id++ {
		if a.SlotOf(id) == c.SlotOf(id) {
			same++
		}
	}
	if same == 4096 {
		t.Fatal("different member sets hash ids to identical slots — salt is not membership-bound")
	}
}

func TestNewRejects(t *testing.T) {
	fb := func([]uint64) {}
	cases := []Config{
		{Members: nil, Self: "a", Fallback: fb},
		{Members: []string{"a:1", "b:1"}, Self: "c:1", Fallback: fb},        // self missing
		{Members: []string{"a:1", "a:1", "b:1"}, Self: "a:1", Fallback: fb}, // duplicate
		{Members: []string{"a:1", "b:1"}, Self: "a:1"},                      // no fallback
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, cfg)
		}
	}
}

// TestApplyPlacement pins the override discipline: newer epochs install a
// whole-range ownership flip, older or equal epochs are rejected (a member
// that heard a broadcast late must not roll the table back), and the base
// table is never mutated in place.
func TestApplyPlacement(t *testing.T) {
	members := []string{"m0:1", "m1:1", "m2:1"}
	c := testCluster(t, members, "m0:1", nil)
	if c.Epoch() != 0 {
		t.Fatalf("fresh cluster epoch %d, want 0", c.Epoch())
	}
	before := make([]int, 128)
	for slot := range before {
		before[slot] = c.SlotOwner(slot)
	}
	if !c.ApplyPlacement(1, 0, 63, 2) {
		t.Fatal("epoch-1 override rejected")
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch %d after override, want 1", c.Epoch())
	}
	for slot := 0; slot < 64; slot++ {
		if c.SlotOwner(slot) != 2 {
			t.Fatalf("slot %d owner %d after override, want 2", slot, c.SlotOwner(slot))
		}
	}
	for slot := 64; slot < 128; slot++ {
		if c.SlotOwner(slot) != before[slot] {
			t.Fatalf("override leaked into slot %d", slot)
		}
	}
	if c.OwnsRange(0, 63) {
		t.Fatal("self (member 0) claims a range owned by member 2")
	}
	// Stale and equal epochs must be refused.
	if c.ApplyPlacement(1, 0, 63, 0) {
		t.Fatal("equal-epoch override accepted")
	}
	if c.ApplyPlacement(0, 0, 63, 0) {
		t.Fatal("older-epoch override accepted")
	}
	// Out-of-range slots and owners refuse without touching the table.
	if c.ApplyPlacement(2, -1, 5, 0) || c.ApplyPlacement(2, 0, shard.PlacementSlots, 0) ||
		c.ApplyPlacement(2, 5, 4, 0) || c.ApplyPlacement(2, 0, 5, 3) {
		t.Fatal("invalid override accepted")
	}
	if c.Epoch() != 1 {
		t.Fatalf("rejected overrides moved the epoch to %d", c.Epoch())
	}
	counts := c.SlotCounts()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != shard.PlacementSlots {
		t.Fatalf("slot counts sum to %d, want %d", total, shard.PlacementSlots)
	}
}

// TestPartitionUnion checks the partition invariant ingest routing rests
// on: every input id lands in exactly one bucket, the bucket agrees with
// OwnerOf, and self's bucket is the local slice.
func TestPartitionUnion(t *testing.T) {
	members := []string{"m0:1", "m1:1", "m2:1"}
	c := testCluster(t, members, "m1:1", nil)
	ids := make([]uint64, 2000)
	for i := range ids {
		ids[i] = uint64(i * 2654435761)
	}
	local, remote := c.Partition(ids)
	seen := 0
	for _, id := range local {
		if c.OwnerOf(id) != c.SelfIndex() {
			t.Fatalf("local id %d owned by member %d", id, c.OwnerOf(id))
		}
		seen++
	}
	for member, batch := range remote {
		if member == c.SelfIndex() && len(batch) > 0 {
			t.Fatal("self bucket in the remote partition")
		}
		for _, id := range batch {
			if c.OwnerOf(id) != member {
				t.Fatalf("id %d in member %d's bucket, owned by %d", id, member, c.OwnerOf(id))
			}
			seen++
		}
	}
	if seen != len(ids) {
		t.Fatalf("partition covered %d of %d ids", seen, len(ids))
	}
}

// TestForwardToSelfFallsBack: handing Forward our own index is a caller
// bug, but the ids must still reach the fallback sink rather than vanish.
func TestForwardToSelfFallsBack(t *testing.T) {
	var got []uint64
	c := testCluster(t, []string{"m0:1", "m1:1"}, "m0:1", func(ids []uint64) {
		got = append(got, ids...)
	})
	c.Forward(c.SelfIndex(), []uint64{7, 8, 9})
	if len(got) != 3 {
		t.Fatalf("fallback received %d ids, want 3", len(got))
	}
}

// TestStatsShape: the snapshot covers every member, marks self, and the
// slot counts it reports match the live table.
func TestStatsShape(t *testing.T) {
	members := []string{"m0:1", "m1:1", "m2:1"}
	c := testCluster(t, members, "m2:1", nil)
	c.NoteStaleForward()
	c.NoteMigration(true)
	c.NoteMigration(false)
	st := c.Stats()
	if st.Self != "m2:1" || st.StaleForwards != 1 || st.MigrationsIn != 1 || st.MigrationsOut != 1 {
		t.Fatalf("stats header %+v", st)
	}
	if len(st.Members) != 3 {
		t.Fatalf("stats cover %d members", len(st.Members))
	}
	counts := c.SlotCounts()
	for i, m := range st.Members {
		if m.Self != (i == 2) {
			t.Fatalf("member %d self flag %v", i, m.Self)
		}
		if m.Slots != counts[i] {
			t.Fatalf("member %d slots %d, want %d", i, m.Slots, counts[i])
		}
	}
}

// TestMigrationBlobRoundTrip pins the transfer format: everything encoded
// comes back identical, including an empty Γ set (a migration of a range
// holding only sketch evidence).
func TestMigrationBlobRoundTrip(t *testing.T) {
	cases := []Migration{
		{Epoch: 3, FromSlot: 16, ToSlot: 31, Strategy: "knowledge-free",
			IDs: []uint64{1, 1 << 63, 42}, State: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Epoch: 1, FromSlot: 0, ToSlot: 0, Strategy: "basalt", IDs: nil, State: []byte{1}},
	}
	for _, m := range cases {
		blob, err := EncodeMigration(m)
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := DecodeMigration(blob)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Epoch != m.Epoch || got.FromSlot != m.FromSlot || got.ToSlot != m.ToSlot ||
			got.Strategy != m.Strategy || len(got.IDs) != len(m.IDs) || !bytes.Equal(got.State, m.State) {
			t.Fatalf("round trip %+v -> %+v", m, got)
		}
		for i := range m.IDs {
			if got.IDs[i] != m.IDs[i] {
				t.Fatalf("id %d: %d != %d", i, got.IDs[i], m.IDs[i])
			}
		}
	}
}

// TestMigrationBlobDecodeIsCopied: the decoded State must not alias the
// input blob — the daemon retains it past the frame reader's buffer reuse.
func TestMigrationBlobDecodeIsCopied(t *testing.T) {
	blob, err := EncodeMigration(Migration{Epoch: 1, Strategy: "s", State: []byte{9, 9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMigration(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range blob {
		blob[i] = 0xff
	}
	if !bytes.Equal(got.State, []byte{9, 9, 9}) {
		t.Fatal("decoded State aliases the input blob")
	}
}

// TestMigrationBlobRejects drives the decoder with hostile bytes: every
// truncation of a valid blob, plus targeted corruptions, must fail cleanly.
func TestMigrationBlobRejects(t *testing.T) {
	m := Migration{Epoch: 2, FromSlot: 4, ToSlot: 8, Strategy: "knowledge-free",
		IDs: []uint64{5, 6}, State: []byte{1, 2, 3, 4}}
	blob, err := EncodeMigration(m)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(blob); cut++ {
		if _, err := DecodeMigration(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d decoded successfully", cut, len(blob))
		}
	}
	// Trailing bytes are a framing error, not padding.
	if _, err := DecodeMigration(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	corrupt := func(mutate func([]byte)) []byte {
		b := append([]byte(nil), blob...)
		mutate(b)
		return b
	}
	if _, err := DecodeMigration(corrupt(func(b []byte) { b[0] = 'X' })); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := DecodeMigration(corrupt(func(b []byte) { b[4], b[5], b[6], b[7] = 0, 0, 0, 99 })); err == nil {
		t.Fatal("bad version accepted")
	}
	// Inverted slot range (fromSlot bumped past toSlot in the wire bytes).
	inv, err := EncodeMigration(Migration{Epoch: 1, FromSlot: 8, ToSlot: 8, Strategy: "s", State: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	inv[19] = 9 // fromSlot's low byte: 8 -> 9, now fromSlot > toSlot
	if _, err := DecodeMigration(inv); err == nil {
		t.Fatal("inverted slot range accepted")
	}
	// An ids count that promises more than the blob holds must refuse
	// before allocating.
	huge := corrupt(func(b []byte) {
		off := 4 + 4 + 8 + 4 + 4 + 4 + len(m.Strategy) // start of idsLen
		b[off], b[off+1], b[off+2], b[off+3] = 0xff, 0xff, 0xff, 0xff
	})
	if _, err := DecodeMigration(huge); err == nil {
		t.Fatal("absurd ids count accepted")
	}
}

// TestMigrationBlobEncodeRejects: oversize and malformed migrations refuse
// on the sending side.
func TestMigrationBlobEncodeRejects(t *testing.T) {
	if _, err := EncodeMigration(Migration{Epoch: 1, FromSlot: 9, ToSlot: 8, Strategy: "s", State: []byte{1}}); err == nil {
		t.Fatal("inverted slot range encoded")
	}
	long := make([]byte, maxBlobStrategy+1)
	if _, err := EncodeMigration(Migration{Epoch: 1, Strategy: string(long), State: []byte{1}}); err == nil {
		t.Fatal("oversized strategy name encoded")
	}
	if _, err := EncodeMigration(Migration{Epoch: 1, Strategy: "s",
		State: make([]byte, netgossip.MaxMigratePayload)}); err == nil {
		t.Fatal("blob above the wire bound encoded")
	}
}
