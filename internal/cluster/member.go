package cluster

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nodesampling/internal/netgossip"
)

// ErrNotConnected is returned by member RPCs while the connection to that
// member is down (the dial loop keeps retrying in the background).
var ErrNotConnected = errors.New("cluster: member not connected")

// ErrRPCTimeout is returned by member RPCs whose response did not arrive in
// time; the connection is recycled, since a late response would otherwise
// be mistaken for the next exchange's answer.
var ErrRPCTimeout = errors.New("cluster: rpc timed out")

// rpcResp is one response frame (or terminal error) tagged with the
// connection generation that produced it, the same stale-session defence
// the client package uses across its reconnects.
type rpcResp struct {
	gen   uint64
	typ   netgossip.FrameType
	token uint64 // |Γ| for sample responses, epoch for migrate acks
	ids   []uint64
	err   error
}

// memberConn is the persistent framed connection to one remote member:
// a dial/reconnect supervisor, a bounded forward queue drained by a writer
// goroutine, a reader goroutine dispatching RPC responses, and the
// single-outstanding RPC surface (sampleLocal, migrate) on top.
type memberConn struct {
	c            *Cluster
	idx          int
	addr         string
	tls          *tls.Config
	dialTimeout  time.Duration
	writeTimeout time.Duration

	q       chan []uint64 // forward batches awaiting delivery
	closing chan struct{}

	mu   sync.Mutex // guards conn identity and serialises frame writes
	conn net.Conn

	// gen is bumped per established connection. It is only written under
	// mc.mu, together with conn, so a holder of mc.mu always observes a
	// consistent (conn, gen) pair; lock-free readers (dropConn's recheck)
	// use the atomic load.
	gen atomic.Uint64

	// rpcMu admits one request/response exchange at a time (sample or
	// migrate), so responses need no correlation ids on the wire.
	rpcMu sync.Mutex
	rpcc  chan rpcResp

	connected        atomic.Bool
	forwardedBatches atomic.Uint64
	forwardedIDs     atomic.Uint64
	forwardErrors    atomic.Uint64
	fallbackIDs      atomic.Uint64
	dialFailures     atomic.Uint64
	sampleRPCs       atomic.Uint64
	sampleErrors     atomic.Uint64
}

func newMemberConn(c *Cluster, idx int, addr string, tlsCfg *tls.Config, queue int, dialTimeout, writeTimeout time.Duration) *memberConn {
	return &memberConn{
		c:            c,
		idx:          idx,
		addr:         addr,
		tls:          tlsCfg,
		dialTimeout:  dialTimeout,
		writeTimeout: writeTimeout,
		q:            make(chan []uint64, queue),
		closing:      make(chan struct{}),
		rpcc:         make(chan rpcResp, 1),
	}
}

// forward enqueues a batch (taking ownership of the slice); a full queue
// falls back to local ingest immediately rather than blocking the hot
// ingest path behind a slow member.
func (mc *memberConn) forward(ids []uint64) {
	select {
	case mc.q <- ids:
	default:
		mc.fallbackIDs.Add(uint64(len(ids)))
		mc.c.fallback(ids)
	}
}

// shutdown unblocks run and both per-connection goroutines.
func (mc *memberConn) shutdown() {
	close(mc.closing)
	mc.mu.Lock()
	if mc.conn != nil {
		_ = mc.conn.Close()
	}
	mc.mu.Unlock()
}

// run is the connection supervisor: dial with bounded backoff, run one
// connection's writer and reader until it fails, repeat until shutdown. On
// exit it drains the forward queue into the fallback sink so enqueued
// batches are ingested locally rather than dropped.
func (mc *memberConn) run() {
	defer mc.c.wg.Done()
	defer mc.drainToFallback()
	backoff := 50 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		select {
		case <-mc.closing:
			return
		default:
		}
		conn, err := mc.dial()
		if err != nil {
			mc.dialFailures.Add(1)
			select {
			case <-time.After(backoff):
			case <-mc.closing:
				return
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
		mc.mu.Lock()
		select {
		case <-mc.closing:
			mc.mu.Unlock()
			_ = conn.Close()
			return
		default:
		}
		mc.conn = conn
		gen := mc.gen.Add(1)
		mc.mu.Unlock()
		mc.connected.Store(true)
		mc.c.logger.Info("cluster member connected", "member", mc.addr)

		dead := make(chan struct{}) // closed by the reader when the connection fails
		readerDone := make(chan struct{})
		go mc.readLoop(conn, gen, dead, readerDone)
		mc.writeLoop(conn, dead)

		mc.connected.Store(false)
		mc.mu.Lock()
		mc.conn = nil
		mc.mu.Unlock()
		_ = conn.Close()
		<-readerDone
		mc.c.logger.Warn("cluster member disconnected", "member", mc.addr)
	}
}

func (mc *memberConn) dial() (net.Conn, error) {
	conn, err := (&net.Dialer{Timeout: mc.dialTimeout}).Dial("tcp", mc.addr)
	if err != nil {
		return nil, err
	}
	if mc.tls == nil {
		return conn, nil
	}
	cfg := mc.tls
	if cfg.ServerName == "" {
		if host, _, herr := net.SplitHostPort(mc.addr); herr == nil {
			cfg = cfg.Clone()
			cfg.ServerName = host
		}
	}
	tconn := tls.Client(conn, cfg)
	_ = tconn.SetDeadline(time.Now().Add(mc.dialTimeout))
	if err := tconn.Handshake(); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("tls handshake: %w", err)
	}
	_ = tconn.SetDeadline(time.Time{})
	return tconn, nil
}

// writeLoop drains the forward queue onto conn, tagging every Forward
// frame with the current placement epoch so the receiver can spot a stale
// routing decision. A failed write hands the batch to the fallback sink
// and recycles the connection.
func (mc *memberConn) writeLoop(conn net.Conn, dead chan struct{}) {
	for {
		select {
		case ids := <-mc.q:
			if _, err := mc.writeFrame(netgossip.Frame{Type: netgossip.FrameForward, Token: mc.c.Epoch(), IDs: ids}); err != nil {
				mc.forwardErrors.Add(1)
				mc.fallbackIDs.Add(uint64(len(ids)))
				mc.c.fallback(ids)
				return
			}
			mc.forwardedBatches.Add(1)
			mc.forwardedIDs.Add(uint64(len(ids)))
		case <-dead:
			return
		case <-mc.closing:
			return
		}
	}
}

// readLoop dispatches inbound frames until the connection fails: RPC
// responses to the single-slot rpc channel (tagged with the connection
// generation), placement updates to the routing table, pongs ignored.
func (mc *memberConn) readLoop(conn net.Conn, gen uint64, dead, done chan struct{}) {
	defer close(done)
	defer close(dead)
	fr := netgossip.NewFrameReader(conn)
	for {
		f, err := fr.Read()
		if err != nil {
			return
		}
		switch f.Type {
		case netgossip.FrameSampleLocalResp:
			// IDs alias the reader's buffer; copy before handing off.
			mc.deliver(rpcResp{gen: gen, typ: f.Type, token: f.Token, ids: append([]uint64(nil), f.IDs...)})
		case netgossip.FrameMigrateAck:
			mc.deliver(rpcResp{gen: gen, typ: f.Type, token: f.Token})
		case netgossip.FramePlacementUpdate:
			mc.c.ApplyPlacement(f.Token, int(f.SlotFrom), int(f.SlotTo), int(f.Owner))
		case netgossip.FramePong:
		case netgossip.FrameError:
			mc.deliver(rpcResp{gen: gen, err: fmt.Errorf("cluster: member %s: %s", mc.addr, f.Msg)})
			mc.c.logger.Warn("cluster member error frame", "member", mc.addr, "msg", f.Msg)
			return
		default:
			mc.c.logger.Warn("cluster member sent unexpected frame", "member", mc.addr, "type", int(f.Type))
			return
		}
	}
}

// deliver hands a response to the single-slot rpc channel, evicting a
// buffered stale one: with rpcMu admitting one exchange at a time, anything
// already buffered belongs to an abandoned or previous-session request.
func (mc *memberConn) deliver(r rpcResp) {
	select {
	case mc.rpcc <- r:
		return
	default:
	}
	select {
	case <-mc.rpcc:
	default:
	}
	select {
	case mc.rpcc <- r:
	default:
	}
}

// writeFrame sends one frame under the connection lock with a write
// deadline, so a wedged member cannot pin the writer (or an RPC) forever.
// It returns the generation of the connection the frame was written to —
// conn and gen are read together under mc.mu, so an RPC can match its
// response against the connection that actually carried the request even
// when a reconnect lands mid-call.
func (mc *memberConn) writeFrame(f netgossip.Frame) (uint64, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	conn := mc.conn
	if conn == nil {
		return 0, ErrNotConnected
	}
	gen := mc.gen.Load()
	_ = conn.SetWriteDeadline(time.Now().Add(mc.writeTimeout))
	err := netgossip.WriteFrame(conn, f)
	_ = conn.SetWriteDeadline(time.Time{})
	return gen, err
}

// rpc runs one request/response exchange: write req, wait for a response
// of type want from the same connection generation. A timeout recycles the
// connection (a late response must not answer the next request).
func (mc *memberConn) rpc(req netgossip.Frame, want netgossip.FrameType, timeout time.Duration) (rpcResp, error) {
	mc.rpcMu.Lock()
	defer mc.rpcMu.Unlock()
	if !mc.connected.Load() {
		return rpcResp{}, ErrNotConnected
	}
	select { // clear any abandoned predecessor response
	case <-mc.rpcc:
	default:
	}
	gen, err := mc.writeFrame(req)
	if err != nil {
		return rpcResp{}, err
	}
	deadline := time.After(timeout)
	for {
		select {
		case r := <-mc.rpcc:
			if r.gen != gen {
				continue // buffered response from a dead connection
			}
			if r.err != nil {
				return rpcResp{}, r.err
			}
			if r.typ != want {
				return rpcResp{}, fmt.Errorf("cluster: member %s answered frame type %d, want %d", mc.addr, r.typ, want)
			}
			return r, nil
		case <-deadline:
			mc.dropConn(gen)
			return rpcResp{}, fmt.Errorf("%w: member %s", ErrRPCTimeout, mc.addr)
		case <-mc.closing:
			return rpcResp{}, ErrNotConnected
		}
	}
}

// dropConn closes the current connection if it is still the one the failed
// exchange was written to, forcing a reconnect without penalising a
// healthy successor.
func (mc *memberConn) dropConn(gen uint64) {
	mc.mu.Lock()
	conn := mc.conn
	current := mc.gen.Load() == gen
	mc.mu.Unlock()
	if current && conn != nil {
		_ = conn.Close()
	}
}

// sampleLocal asks the member for n uniform draws from its own pool along
// with its current |Γ| weight.
func (mc *memberConn) sampleLocal(n int, timeout time.Duration) (gamma uint64, ids []uint64, err error) {
	mc.sampleRPCs.Add(1)
	r, err := mc.rpc(netgossip.Frame{Type: netgossip.FrameSampleLocal, N: uint32(n)}, netgossip.FrameSampleLocalResp, timeout)
	if err != nil {
		mc.sampleErrors.Add(1)
		return 0, nil, err
	}
	return r.token, r.ids, nil
}

// migrate transfers a migration blob and waits for the ack carrying the
// placement epoch the target installed.
func (mc *memberConn) migrate(blob []byte, timeout time.Duration) (uint64, error) {
	r, err := mc.rpc(netgossip.Frame{Type: netgossip.FrameMigrateState, Blob: blob}, netgossip.FrameMigrateAck, timeout)
	if err != nil {
		return 0, err
	}
	return r.token, nil
}

// sendPlacement enqueues a placement announcement on the connection,
// best-effort: a down member misses it and catches up via stale-forward
// epochs.
func (mc *memberConn) sendPlacement(epoch uint64, from, to, owner int) {
	_, _ = mc.writeFrame(netgossip.Frame{
		Type:     netgossip.FramePlacementUpdate,
		Token:    epoch,
		SlotFrom: uint32(from),
		SlotTo:   uint32(to),
		Owner:    uint32(owner),
	})
}

// drainToFallback hands every still-queued forward batch to local ingest
// on shutdown or terminal disconnect — the cluster layer never loses ids.
func (mc *memberConn) drainToFallback() {
	for {
		select {
		case ids := <-mc.q:
			mc.fallbackIDs.Add(uint64(len(ids)))
			mc.c.fallback(ids)
		default:
			return
		}
	}
}
