// Package cluster turns N unsd daemons into one logical sampling plane.
// It is the placement abstraction of internal/shard lifted one level: the
// same salted rendezvous computation (shard.NewPlacement) that assigns
// hash-space slots to in-process shard workers here assigns them to member
// daemons, so an id's route is decided by identical arithmetic at both
// levels — first to a member, then (inside that member's pool) to a shard.
//
// Membership is a static list: every member is started with the same
// -members set and the same cluster seed, sorts the list lexicographically
// so the member indices agree everywhere, and derives the shared routing
// salt from the seed and the member set. Ingest arriving at any member is
// partitioned against the routing table; batches owned elsewhere travel to
// their owner over a persistent framed connection (FrameForward), and an
// undeliverable batch falls back to local ingest — misplaced, never lost,
// and harmless to uniformity because cluster-wide sampling weights members
// by their actual |Γ| regardless of where an id landed.
//
// The routing table is the base placement plus per-slot ownership
// overrides installed by live migrations: POST /migrate on the source
// member exports a slot range's Γ and merged frequency state, transfers it
// as one versioned blob (FrameMigrateState), and on acknowledgement the
// override — slots [from, to] now belong to the target — is installed
// under a bumped placement epoch and broadcast to every member
// (FramePlacementUpdate).
//
// The package deliberately knows nothing about samplers: state blobs are
// opaque bytes produced and consumed by the pool's Export/Import surface,
// so every registered strategy clusters the same way.
package cluster

import (
	"crypto/tls"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nodesampling/internal/rng"
	"nodesampling/internal/shard"
)

// MaxMembers bounds the member count: the routing table stores member
// indices as bytes, like the pool's shard map.
const MaxMembers = 256

// Config parameterises a Cluster.
type Config struct {
	// Members lists every member's framed stream address, including this
	// process's own. All members must be started with an identical set
	// (order-insensitive: the list is sorted internally) — and, because
	// migrated frequency state must merge into the receiving pool, with
	// the same -seed and sampler flags.
	Members []string
	// Self is this member's own stream address, as it appears in Members.
	Self string
	// Seed drives the shared routing salt. Every member must use the same
	// value or ids route differently on different members.
	Seed uint64
	// TLS, when non-nil, is the client-side config used to dial other
	// members' stream listeners (RootCAs verifying their certificates,
	// plus a client certificate under mutual TLS).
	TLS *tls.Config
	// Fallback receives batches that could not reach their owner (queue
	// overflow, member down): the caller ingests them locally so no id is
	// ever lost to the cluster layer. Required.
	Fallback func(ids []uint64)
	// Logger receives connection lifecycle events; nil discards them.
	Logger *slog.Logger
	// ForwardQueue is each member connection's forward queue capacity in
	// batches; 0 means 256.
	ForwardQueue int
	// DialTimeout bounds each dial attempt (0 = 5s); WriteTimeout bounds
	// each frame write (0 = 10s).
	DialTimeout  time.Duration
	WriteTimeout time.Duration
}

// Table is one immutable epoch of cluster routing: the per-slot owner
// member index. It starts as the materialised base placement and evolves
// by whole-slot-range overrides installed by migrations.
type Table struct {
	epoch uint64
	owner []uint8
}

// Epoch returns the table's placement epoch.
func (t *Table) Epoch() uint64 { return t.epoch }

// SlotOwner returns the member index owning one slot.
func (t *Table) SlotOwner(slot int) int { return int(t.owner[slot]) }

// Cluster is one member's view of the fleet: the shared routing table, a
// persistent connection per remote member, and the forwarding/sampling/
// migration machinery over them. All methods are safe for concurrent use.
type Cluster struct {
	members  []string // sorted; indices are the cluster-wide member ids
	self     int
	salt     uint64
	fallback func([]uint64)
	logger   *slog.Logger

	tmu   sync.Mutex // serialises table writers (migrations are rare)
	table atomic.Pointer[Table]

	conns []*memberConn // index-aligned with members; conns[self] is nil

	staleForwards atomic.Uint64
	migrationsIn  atomic.Uint64
	migrationsOut atomic.Uint64

	closeOnce sync.Once
	closing   chan struct{}
	wg        sync.WaitGroup
}

// New validates cfg and builds the cluster view: sorted membership, the
// derived routing salt, the base placement table and one (not yet dialled)
// connection per remote member. Call Start to begin dialling.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Members) < 1 || len(cfg.Members) > MaxMembers {
		return nil, fmt.Errorf("cluster: member count must be in [1, %d], got %d", MaxMembers, len(cfg.Members))
	}
	if cfg.Fallback == nil {
		return nil, fmt.Errorf("cluster: no fallback ingest sink configured")
	}
	members := append([]string(nil), cfg.Members...)
	sort.Strings(members)
	for i := 1; i < len(members); i++ {
		if members[i] == members[i-1] {
			return nil, fmt.Errorf("cluster: duplicate member %s", members[i])
		}
	}
	self := -1
	for i, m := range members {
		if m == cfg.Self {
			self = i
			break
		}
	}
	if self < 0 {
		return nil, fmt.Errorf("cluster: self address %q not in member list %v", cfg.Self, members)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	queue := cfg.ForwardQueue
	if queue <= 0 {
		queue = 256
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = 5 * time.Second
	}
	writeTimeout := cfg.WriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = 10 * time.Second
	}

	keys := make([]uint64, len(members))
	for i, m := range members {
		keys[i] = memberKey(m)
	}
	base := shard.NewPlacement(0, keys)
	owner := make([]uint8, shard.PlacementSlots)
	for slot := range owner {
		owner[slot] = uint8(base.SlotOwner(slot))
	}

	c := &Cluster{
		members:  members,
		self:     self,
		salt:     deriveSalt(cfg.Seed, members),
		fallback: cfg.Fallback,
		logger:   logger,
		closing:  make(chan struct{}),
	}
	c.table.Store(&Table{epoch: 0, owner: owner})
	c.conns = make([]*memberConn, len(members))
	for i, m := range members {
		if i == self {
			continue
		}
		c.conns[i] = newMemberConn(c, i, m, cfg.TLS, queue, dialTimeout, writeTimeout)
	}
	return c, nil
}

// memberKey derives a member's rendezvous key from its address — stable
// across processes, so every member computes the same base placement.
func memberKey(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return rng.Mix64(h.Sum64())
}

// deriveSalt mixes the shared seed with the member set, so two clusters
// with the same seed but different membership still route differently.
func deriveSalt(seed uint64, members []string) uint64 {
	h := fnv.New64a()
	for _, m := range members {
		h.Write([]byte(m))
		h.Write([]byte{0})
	}
	return rng.Mix64(seed ^ h.Sum64())
}

// Start launches the per-member connection managers (dial, reconnect,
// forward, read). Safe to call once; a cluster used only for routing
// decisions (tests) may skip it.
func (c *Cluster) Start() {
	for _, mc := range c.conns {
		if mc == nil {
			continue
		}
		c.wg.Add(1)
		go mc.run()
	}
}

// Close tears the member connections down and waits for their goroutines.
// Queued forward batches are handed to the fallback sink, so nothing in
// flight is lost.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.closing)
		for _, mc := range c.conns {
			if mc != nil {
				mc.shutdown()
			}
		}
	})
	c.wg.Wait()
}

// Members returns the sorted member addresses; the slice is shared, do not
// modify.
func (c *Cluster) Members() []string { return c.members }

// SelfIndex returns this member's index in Members.
func (c *Cluster) SelfIndex() int { return c.self }

// IndexOf returns the member index for an address, or -1.
func (c *Cluster) IndexOf(addr string) int {
	for i, m := range c.members {
		if m == addr {
			return i
		}
	}
	return -1
}

// Epoch returns the current placement epoch.
func (c *Cluster) Epoch() uint64 { return c.table.Load().epoch }

// SlotOf returns the cluster slot id hashes to — the granularity at which
// ownership moves between members.
func (c *Cluster) SlotOf(id uint64) int {
	return shard.PlacementSlot(rng.Mix64(id ^ c.salt))
}

// OwnerOf returns the member index owning id under the current table.
func (c *Cluster) OwnerOf(id uint64) int {
	t := c.table.Load()
	return int(t.owner[shard.PlacementSlot(rng.Mix64(id^c.salt))])
}

// SlotOwner returns the member index owning one slot.
func (c *Cluster) SlotOwner(slot int) int { return c.table.Load().SlotOwner(slot) }

// OwnsRange reports whether this member owns every slot in [from, to].
func (c *Cluster) OwnsRange(from, to int) bool {
	t := c.table.Load()
	for slot := from; slot <= to; slot++ {
		if int(t.owner[slot]) != c.self {
			return false
		}
	}
	return true
}

// SlotCounts returns how many slots each member currently owns.
func (c *Cluster) SlotCounts() []int {
	t := c.table.Load()
	counts := make([]int, len(c.members))
	for _, o := range t.owner {
		counts[o]++
	}
	return counts
}

// ApplyPlacement installs an ownership override — slots [from, to] belong
// to member owner as of epoch — if epoch is newer than the current table's.
// Reports whether the table changed. Used by both ends of a migration and
// by members receiving the broadcast.
func (c *Cluster) ApplyPlacement(epoch uint64, from, to, owner int) bool {
	if from < 0 || to >= shard.PlacementSlots || from > to || owner < 0 || owner >= len(c.members) {
		return false
	}
	c.tmu.Lock()
	defer c.tmu.Unlock()
	cur := c.table.Load()
	if epoch <= cur.epoch {
		return false
	}
	next := &Table{epoch: epoch, owner: append([]uint8(nil), cur.owner...)}
	for slot := from; slot <= to; slot++ {
		next.owner[slot] = uint8(owner)
	}
	c.table.Store(next)
	return true
}

// Partition splits a batch by owner under the current table: ids this
// member owns come back in local, the rest grouped per owner member. Both
// return freshly allocated slices the caller owns (the forward path hands
// its slices to Forward, which keeps them).
func (c *Cluster) Partition(ids []uint64) (local []uint64, remote [][]uint64) {
	t := c.table.Load()
	remote = make([][]uint64, len(c.members))
	for _, id := range ids {
		o := int(t.owner[shard.PlacementSlot(rng.Mix64(id^c.salt))])
		if o == c.self {
			local = append(local, id)
			continue
		}
		remote[o] = append(remote[o], id)
	}
	return local, remote
}

// Forward enqueues a batch for delivery to member (taking ownership of the
// slice). A full queue or closed cluster falls back to local ingest —
// misplaced, never lost.
func (c *Cluster) Forward(member int, ids []uint64) {
	if len(ids) == 0 {
		return
	}
	mc := c.conns[member]
	if mc == nil { // self: caller bug, but never lose ids
		c.fallback(ids)
		return
	}
	mc.forward(ids)
}

// NoteStaleForward counts a forward that arrived tagged with an older
// placement epoch than ours — expected transiently around a migration; the
// ids are ingested where they arrived.
func (c *Cluster) NoteStaleForward() { c.staleForwards.Add(1) }

// NoteMigration counts a completed migration on this member (in = import
// side, out = export side).
func (c *Cluster) NoteMigration(in bool) {
	if in {
		c.migrationsIn.Add(1)
	} else {
		c.migrationsOut.Add(1)
	}
}

// MemberDraws is one member's contribution to a cluster-wide sample
// fan-out: n independent uniform draws from its local pool plus the |Γ|
// weight they carry.
type MemberDraws struct {
	Member int
	Addr   string
	Gamma  uint64
	IDs    []uint64
	Err    error
}

// SampleMembers asks every remote member for n local draws and its |Γ|,
// concurrently, each under the member connection's single-outstanding RPC
// discipline. Members that are down or time out come back with Err set;
// the caller excludes them from the weighted merge.
func (c *Cluster) SampleMembers(n int, timeout time.Duration) []MemberDraws {
	out := make([]MemberDraws, 0, len(c.members)-1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, mc := range c.conns {
		if mc == nil {
			continue
		}
		wg.Add(1)
		go func(i int, mc *memberConn) {
			defer wg.Done()
			gamma, ids, err := mc.sampleLocal(n, timeout)
			mu.Lock()
			out = append(out, MemberDraws{Member: i, Addr: c.members[i], Gamma: gamma, IDs: ids, Err: err})
			mu.Unlock()
		}(i, mc)
	}
	wg.Wait()
	return out
}

// MigrateTo transfers a migration blob to member and waits for its
// acknowledgement, returning the placement epoch the target installed.
func (c *Cluster) MigrateTo(member int, blob []byte, timeout time.Duration) (uint64, error) {
	if member < 0 || member >= len(c.members) || c.conns[member] == nil {
		return 0, fmt.Errorf("cluster: invalid migration target %d", member)
	}
	return c.conns[member].migrate(blob, timeout)
}

// BroadcastPlacement announces an ownership change to every remote member,
// best-effort: a member that is down learns the epoch from the next stale
// forward it routes (and its ingest stays correct meanwhile — only
// transiently misplaced).
func (c *Cluster) BroadcastPlacement(epoch uint64, from, to, owner int) {
	for _, mc := range c.conns {
		if mc != nil {
			mc.sendPlacement(epoch, from, to, owner)
		}
	}
}

// MemberStats is one member's health and forwarding accounting as seen
// from this process.
type MemberStats struct {
	Addr             string `json:"addr"`
	Self             bool   `json:"self"`
	Connected        bool   `json:"connected"`
	Slots            int    `json:"slots"`
	QueueDepth       int    `json:"queue_depth"`
	ForwardedBatches uint64 `json:"forwarded_batches"`
	ForwardedIDs     uint64 `json:"forwarded_ids"`
	ForwardErrors    uint64 `json:"forward_errors"`
	FallbackIDs      uint64 `json:"fallback_ids"`
	DialFailures     uint64 `json:"dial_failures"`
	SampleRPCs       uint64 `json:"sample_rpcs"`
	SampleErrors     uint64 `json:"sample_errors"`
}

// Stats is a whole-cluster health snapshot from this member's view.
type Stats struct {
	Self          string        `json:"self"`
	Epoch         uint64        `json:"epoch"`
	StaleForwards uint64        `json:"stale_forwards"`
	MigrationsIn  uint64        `json:"migrations_in"`
	MigrationsOut uint64        `json:"migrations_out"`
	Members       []MemberStats `json:"members"`
}

// Stats snapshots membership health, slot ownership and per-member
// forwarding counters.
func (c *Cluster) Stats() Stats {
	counts := c.SlotCounts()
	st := Stats{
		Self:          c.members[c.self],
		Epoch:         c.Epoch(),
		StaleForwards: c.staleForwards.Load(),
		MigrationsIn:  c.migrationsIn.Load(),
		MigrationsOut: c.migrationsOut.Load(),
		Members:       make([]MemberStats, len(c.members)),
	}
	for i, m := range c.members {
		ms := MemberStats{Addr: m, Self: i == c.self, Slots: counts[i], Connected: i == c.self}
		if mc := c.conns[i]; mc != nil {
			ms.Connected = mc.connected.Load()
			ms.QueueDepth = len(mc.q)
			ms.ForwardedBatches = mc.forwardedBatches.Load()
			ms.ForwardedIDs = mc.forwardedIDs.Load()
			ms.ForwardErrors = mc.forwardErrors.Load()
			ms.FallbackIDs = mc.fallbackIDs.Load()
			ms.DialFailures = mc.dialFailures.Load()
			ms.SampleRPCs = mc.sampleRPCs.Load()
			ms.SampleErrors = mc.sampleErrors.Load()
		}
		st.Members[i] = ms
	}
	return st
}
