// Package urn implements the balls-into-urns analysis of Section V of the
// paper, which quantifies the minimum number of distinct node identifiers an
// adversary must create to subvert the knowledge-free sampler.
//
// Each column of a Count-Min row is an urn; every distinct malicious id is a
// ball thrown uniformly (by 2-universality of the row hash). With N_ℓ the
// number of occupied urns among k after ℓ balls:
//
//   - P{N_ℓ = i} = S(ℓ,i)·k! / (k^ℓ·(k−i)!)                  (Theorem 6)
//   - P{N_ℓ = N_{ℓ-1}} = E[N_{ℓ-1}]/k = 1 − (1−1/k)^{ℓ-1}
//
// A targeted attack on one victim id succeeds once some ball collides in
// every one of the s independent rows:
//
//	L_{k,s} = inf{ ℓ ≥ 2 : (P{N_ℓ = N_{ℓ-1}})^s > 1 − η_T }   (Relation 2)
//
// A flooding attack must occupy all k urns (coupon collector U_k):
//
//	E_k = inf{ ℓ ≥ k : P{U_k ≤ ℓ} > 1 − η_F }                 (Relation 5)
//
// The package provides numerically stable dynamic-programming evaluations of
// all these quantities, exact big-integer Stirling numbers for cross-checks,
// and the closed forms used for fast computation.
package urn

import (
	"fmt"
	"math"
	"math/big"
)

// Occupancy iterates the exact distribution of N_ℓ, the number of occupied
// urns among k after ℓ uniform ball throws. The zero value is not usable;
// construct with NewOccupancy.
type Occupancy struct {
	k   int
	ell int
	q   []float64 // q[i] = P{N_ell = i}, i in [0, k]
	tmp []float64
}

// NewOccupancy returns the occupancy distribution at ℓ = 0 (no balls thrown,
// all urns empty) for k urns.
func NewOccupancy(k int) (*Occupancy, error) {
	if k < 1 {
		return nil, fmt.Errorf("urn: urn count must be at least 1, got %d", k)
	}
	q := make([]float64, k+1)
	q[0] = 1
	return &Occupancy{k: k, q: q, tmp: make([]float64, k+1)}, nil
}

// K returns the number of urns.
func (o *Occupancy) K() int { return o.k }

// Balls returns ℓ, the number of balls thrown so far.
func (o *Occupancy) Balls() int { return o.ell }

// P returns P{N_ℓ = i} for the current ℓ. Out-of-range i yields 0.
func (o *Occupancy) P(i int) float64 {
	if i < 0 || i > o.k {
		return 0
	}
	return o.q[i]
}

// Step throws one more ball, advancing the distribution from ℓ to ℓ+1 via
// the recursion in the proof of Theorem 6:
//
//	P{N_ℓ = i} = ((k−i+1)/k)·P{N_{ℓ-1} = i−1} + (i/k)·P{N_{ℓ-1} = i}.
func (o *Occupancy) Step() {
	k := float64(o.k)
	o.tmp[0] = 0
	for i := 1; i <= o.k; i++ {
		o.tmp[i] = o.q[i-1]*(k-float64(i)+1)/k + o.q[i]*float64(i)/k
	}
	o.q, o.tmp = o.tmp, o.q
	o.ell++
}

// Expected returns E[N_ℓ] computed from the current distribution.
func (o *Occupancy) Expected() float64 {
	e := 0.0
	for i := 1; i <= o.k; i++ {
		e += float64(i) * o.q[i]
	}
	return e
}

// AllOccupied returns P{N_ℓ = k}, the probability that every urn holds at
// least one ball — equivalently P{U_k ≤ ℓ} for the coupon-collector time.
func (o *Occupancy) AllOccupied() float64 { return o.q[o.k] }

// CollisionProb returns P{N_{ℓ+1} = N_ℓ} for the current state: the chance
// that the next ball lands in an already-occupied urn, which equals
// E[N_ℓ]/k (Section V-A).
func (o *Occupancy) CollisionProb() float64 { return o.Expected() / float64(o.k) }

// ExpectedOccupied is the closed form E[N_ℓ] = k(1 − (1−1/k)^ℓ).
func ExpectedOccupied(k, ell int) float64 {
	if k < 1 || ell < 0 {
		return 0
	}
	return float64(k) * (1 - math.Pow(1-1/float64(k), float64(ell)))
}

// CollisionProbClosed is the closed form P{N_ℓ = N_{ℓ-1}} = 1 − (1−1/k)^{ℓ-1}.
func CollisionProbClosed(k, ell int) float64 {
	if ell < 1 {
		return 0
	}
	return 1 - math.Pow(1-1/float64(k), float64(ell-1))
}

// validateEffortInputs checks the shared parameter domain of the effort
// functions.
func validateEffortInputs(k, s int, eta float64) error {
	if k < 1 {
		return fmt.Errorf("urn: k must be at least 1, got %d", k)
	}
	if s < 1 {
		return fmt.Errorf("urn: s must be at least 1, got %d", s)
	}
	if !(eta > 0 && eta < 1) {
		return fmt.Errorf("urn: eta must be in (0,1), got %v", eta)
	}
	return nil
}

// TargetedEffort returns L_{k,s}, the minimum number of distinct malicious
// ids to inject so that, with probability greater than 1 − eta, at least one
// of them collides with the victim's counter in every one of the s rows of a
// k-column Count-Min sketch (Relation 2 of the paper).
func TargetedEffort(k, s int, eta float64) (int, error) {
	if err := validateEffortInputs(k, s, eta); err != nil {
		return 0, err
	}
	if k == 1 {
		// A single urn: the second ball always collides.
		return 2, nil
	}
	// Closed form: need (1 − (1−1/k)^{ℓ-1})^s > 1 − η, i.e.
	// (ℓ−1)·ln(1−1/k) < ln(1 − (1−η)^{1/s}).
	target := 1 - math.Pow(1-eta, 1/float64(s))
	guess := 2
	if target > 0 {
		x := math.Log(target) / math.Log(1-1/float64(k))
		guess = int(x) // will be adjusted by the exact scan below
	}
	if guess < 2 {
		guess = 2
	}
	ok := func(ell int) bool {
		if ell < 2 {
			return false
		}
		p := CollisionProbClosed(k, ell)
		return math.Pow(p, float64(s)) > 1-eta
	}
	// Walk down to the boundary then up, so floating-point slack in the
	// closed-form guess cannot produce an off-by-one.
	for guess > 2 && ok(guess-1) {
		guess--
	}
	for !ok(guess) {
		guess++
	}
	return guess, nil
}

// TargetedEffortDP computes L_{k,s} by evolving the exact occupancy
// distribution instead of the closed form. It exists as an independent
// implementation for cross-validation; both must agree exactly.
func TargetedEffortDP(k, s int, eta float64) (int, error) {
	if err := validateEffortInputs(k, s, eta); err != nil {
		return 0, err
	}
	occ, err := NewOccupancy(k)
	if err != nil {
		return 0, err
	}
	occ.Step() // ℓ = 1
	for ell := 2; ; ell++ {
		// P{N_ell = N_{ell-1}} uses the distribution at ell−1.
		p := occ.CollisionProb()
		if math.Pow(p, float64(s)) > 1-eta {
			return ell, nil
		}
		occ.Step()
		if ell > 100_000_000 {
			return 0, fmt.Errorf("urn: targeted effort did not converge for k=%d s=%d eta=%v", k, s, eta)
		}
	}
}

// FloodingEffort returns E_k, the minimum number of distinct malicious ids
// to inject so that, with probability greater than 1 − eta, every one of the
// k columns of the sketch is hit — biasing the estimate of every id in the
// system (Relation 5). The value is independent of the row count s because
// the rows fill simultaneously and independently.
func FloodingEffort(k int, eta float64) (int, error) {
	if err := validateEffortInputs(k, 1, eta); err != nil {
		return 0, err
	}
	if k == 1 {
		return 1, nil
	}
	occ, err := NewOccupancy(k)
	if err != nil {
		return 0, err
	}
	for ell := 0; ell < k; ell++ {
		occ.Step()
	}
	for ell := k; ; ell++ {
		if occ.AllOccupied() > 1-eta {
			return ell, nil
		}
		occ.Step()
		if ell > 100_000_000 {
			return 0, fmt.Errorf("urn: flooding effort did not converge for k=%d eta=%v", k, eta)
		}
	}
}

// FloodingEffortAllRows returns the exact flooding threshold when the event
// is required in all s independent rows simultaneously:
// inf{ ℓ ≥ k : (P{N_ℓ = k})^s > 1 − eta }. The paper's E_k corresponds to
// s = 1 (its Section V-B argues the row count does not matter, which holds
// only approximately); the gap to E_k quantifies that approximation.
func FloodingEffortAllRows(k, s int, eta float64) (int, error) {
	if err := validateEffortInputs(k, s, eta); err != nil {
		return 0, err
	}
	if k == 1 {
		return 1, nil
	}
	occ, err := NewOccupancy(k)
	if err != nil {
		return 0, err
	}
	for ell := 0; ell < k; ell++ {
		occ.Step()
	}
	for ell := k; ; ell++ {
		if math.Pow(occ.AllOccupied(), float64(s)) > 1-eta {
			return ell, nil
		}
		occ.Step()
		if ell > 100_000_000 {
			return 0, fmt.Errorf("urn: all-rows flooding effort did not converge for k=%d s=%d eta=%v", k, s, eta)
		}
	}
}

// AllOccupiedInclusionExclusion returns P{N_ℓ = k} via the explicit
// inclusion–exclusion sum Σ_j (−1)^j C(k,j)(1−j/k)^ℓ. It is numerically
// reliable only where the sum converges quickly (ℓ well above k·ln k, the
// regime where the effort thresholds live) and is used to cross-check the
// DP.
func AllOccupiedInclusionExclusion(k, ell int) float64 {
	if ell < k {
		return 0
	}
	sum := 1.0
	sign := -1.0
	logC := 0.0 // log C(k, j), built incrementally
	for j := 1; j <= k; j++ {
		logC += math.Log(float64(k-j+1)) - math.Log(float64(j))
		frac := 1 - float64(j)/float64(k)
		if frac <= 0 {
			break
		}
		term := math.Exp(logC + float64(ell)*math.Log(frac))
		sum += sign * term
		sign = -sign
		if term < 1e-18 {
			break
		}
	}
	return sum
}

// UkPMF returns P{U_k = ℓ}, the probability that the coupon-collector time
// over k urns equals exactly ℓ, computed as (1/k)·P{N_{ℓ-1} = k−1}.
func UkPMF(k, ell int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("urn: k must be at least 1, got %d", k)
	}
	if ell < k {
		return 0, nil
	}
	if k == 1 {
		if ell == 1 {
			return 1, nil
		}
		return 0, nil
	}
	occ, err := NewOccupancy(k)
	if err != nil {
		return 0, err
	}
	for i := 0; i < ell-1; i++ {
		occ.Step()
	}
	return occ.P(k-1) / float64(k), nil
}

// Stirling2 returns the Stirling number of the second kind S(ℓ, i) as an
// exact big integer, using the defining recursion (Relation 3 of the paper):
// S(ℓ,i) = S(ℓ−1,i−1)·1{i≠1} + i·S(ℓ−1,i)·1{i≠ℓ}, S(1,1) = 1.
func Stirling2(ell, i int) *big.Int {
	if ell < 1 || i < 1 || i > ell {
		return big.NewInt(0)
	}
	// Rolling one-dimensional DP over ℓ.
	prev := make([]*big.Int, ell+1)
	cur := make([]*big.Int, ell+1)
	for j := range prev {
		prev[j] = big.NewInt(0)
		cur[j] = big.NewInt(0)
	}
	prev[1].SetInt64(1) // S(1,1)
	for l := 2; l <= ell; l++ {
		for j := 1; j <= l && j <= i; j++ {
			cur[j].SetInt64(0)
			if j != 1 {
				cur[j].Add(cur[j], prev[j-1])
			}
			if j != l {
				var t big.Int
				t.Mul(big.NewInt(int64(j)), prev[j])
				cur[j].Add(cur[j], &t)
			}
		}
		prev, cur = cur, prev
	}
	return new(big.Int).Set(prev[i])
}

// OccupancyExact returns P{N_ℓ = i} evaluated through the explicit Theorem 6
// formula S(ℓ,i)·k!/(k^ℓ·(k−i)!) with exact big-rational arithmetic. It is
// exponential in ℓ only through big-int growth, so keep ℓ modest (tests use
// it to validate the DP).
func OccupancyExact(k, ell, i int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("urn: k must be at least 1, got %d", k)
	}
	if ell < 1 || i < 1 || i > k || i > ell {
		return 0, nil
	}
	num := Stirling2(ell, i)
	// num *= k! / (k-i)! = k·(k−1)···(k−i+1)
	for j := 0; j < i; j++ {
		num.Mul(num, big.NewInt(int64(k-j)))
	}
	den := new(big.Int).Exp(big.NewInt(int64(k)), big.NewInt(int64(ell)), nil)
	rat := new(big.Rat).SetFrac(num, den)
	f, _ := rat.Float64()
	return f, nil
}

// HarmonicMeanFillTime returns the classical coupon-collector expectation
// E[U_k] = k·H_k, useful as a sanity anchor for E_k values.
func HarmonicMeanFillTime(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return float64(k) * h
}
