package urn

import (
	"math"
	"math/big"
	"testing"

	"nodesampling/internal/rng"
)

// TestTableITargeted reproduces every L_{k,s} entry of Table I of the paper.
// For k ≤ 50 the published values match the definitions exactly. The two
// k = 250 rows come out one-to-three higher than the paper's print
// (1139 vs 1138 and 2874 vs 2871); the deviation is below 0.15% and is
// documented in EXPERIMENTS.md as a paper-side rounding artifact.
func TestTableITargeted(t *testing.T) {
	cases := []struct {
		k, s int
		eta  float64
		want int
	}{
		{10, 5, 1e-1, 38},
		{10, 5, 1e-4, 104},
		{50, 5, 1e-1, 193},
		{50, 10, 1e-1, 227},
		{50, 40, 1e-1, 296},
		{50, 5, 1e-4, 537},
		{50, 10, 1e-4, 571},
		{50, 40, 1e-4, 640},
		{250, 10, 1e-1, 1139}, // paper prints 1138
		{250, 10, 1e-4, 2874}, // paper prints 2871
	}
	for _, c := range cases {
		got, err := TargetedEffort(c.k, c.s, c.eta)
		if err != nil {
			t.Fatalf("TargetedEffort(%d, %d, %v): %v", c.k, c.s, c.eta, err)
		}
		if got != c.want {
			t.Errorf("L_{%d,%d}(%v) = %d, want %d", c.k, c.s, c.eta, got, c.want)
		}
	}
}

// TestTableIFlooding reproduces the E_k column of Table I. The k ≤ 50 rows
// match the paper exactly. For k = 250 the paper prints 1617 and 3363, which
// are inconsistent with its own Relation (5) (coupon-collector asymptotics
// give k·ln k + k·ln(1/η) ≈ 1956 and 3683); our exact DP values are pinned
// here and the discrepancy is recorded in EXPERIMENTS.md.
func TestTableIFlooding(t *testing.T) {
	cases := []struct {
		k    int
		eta  float64
		want int
	}{
		{10, 1e-1, 44},
		{10, 1e-4, 110},
		{50, 1e-1, 306},
		{50, 1e-4, 650}, // paper prints 651; inclusion-exclusion confirms 650
	}
	for _, c := range cases {
		got, err := FloodingEffort(c.k, c.eta)
		if err != nil {
			t.Fatalf("FloodingEffort(%d, %v): %v", c.k, c.eta, err)
		}
		if got != c.want {
			t.Errorf("E_%d(%v) = %d, want %d", c.k, c.eta, got, c.want)
		}
	}
}

// TestFloodingK250Consistency pins the exact k=250 values and checks they
// agree with the inclusion-exclusion evaluation and the coupon-collector
// asymptotic, since the paper's printed numbers disagree with its own
// definition there.
func TestFloodingK250Consistency(t *testing.T) {
	for _, eta := range []float64{1e-1, 1e-4} {
		got, err := FloodingEffort(250, eta)
		if err != nil {
			t.Fatal(err)
		}
		// Asymptotic anchor: k ln k + k ln(1/eta) within a few percent.
		anchor := 250*math.Log(250) + 250*math.Log(1/eta)
		if math.Abs(float64(got)-anchor)/anchor > 0.05 {
			t.Errorf("E_250(%v) = %d too far from asymptotic %v", eta, got, anchor)
		}
		// The DP boundary must agree with inclusion-exclusion.
		below := AllOccupiedInclusionExclusion(250, got-1)
		above := AllOccupiedInclusionExclusion(250, got)
		if !(below <= 1-eta && above > 1-eta) {
			t.Errorf("E_250(%v) = %d inconsistent with inclusion-exclusion: P(ell-1)=%v P(ell)=%v",
				eta, got, below, above)
		}
	}
}

func TestTargetedClosedFormMatchesDP(t *testing.T) {
	for _, k := range []int{2, 5, 10, 50, 100} {
		for _, s := range []int{1, 5, 17} {
			for _, eta := range []float64{0.5, 1e-1, 1e-3} {
				cf, err := TargetedEffort(k, s, eta)
				if err != nil {
					t.Fatal(err)
				}
				dp, err := TargetedEffortDP(k, s, eta)
				if err != nil {
					t.Fatal(err)
				}
				if cf != dp {
					t.Errorf("k=%d s=%d eta=%v: closed form %d != DP %d", k, s, eta, cf, dp)
				}
			}
		}
	}
}

func TestOccupancyMatchesExactFormula(t *testing.T) {
	// DP distribution vs the Theorem 6 Stirling formula for small (k, ℓ).
	for _, k := range []int{1, 2, 3, 5, 8} {
		occ, err := NewOccupancy(k)
		if err != nil {
			t.Fatal(err)
		}
		for ell := 1; ell <= 12; ell++ {
			occ.Step()
			for i := 1; i <= k && i <= ell; i++ {
				want, err := OccupancyExact(k, ell, i)
				if err != nil {
					t.Fatal(err)
				}
				if got := occ.P(i); math.Abs(got-want) > 1e-12 {
					t.Fatalf("P{N_%d=%d} with k=%d: DP %v vs exact %v", ell, i, k, got, want)
				}
			}
		}
	}
}

func TestOccupancyDistributionSumsToOne(t *testing.T) {
	occ, err := NewOccupancy(17)
	if err != nil {
		t.Fatal(err)
	}
	for ell := 0; ell < 400; ell++ {
		sum := 0.0
		for i := 0; i <= 17; i++ {
			sum += occ.P(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("distribution at ell=%d sums to %v", ell, sum)
		}
		occ.Step()
	}
}

func TestExpectedMatchesClosedForm(t *testing.T) {
	occ, err := NewOccupancy(25)
	if err != nil {
		t.Fatal(err)
	}
	for ell := 0; ell <= 300; ell++ {
		want := ExpectedOccupied(25, ell)
		if got := occ.Expected(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("E[N_%d] DP %v vs closed form %v", ell, got, want)
		}
		occ.Step()
	}
}

func TestCollisionProbMatchesClosedForm(t *testing.T) {
	occ, err := NewOccupancy(12)
	if err != nil {
		t.Fatal(err)
	}
	occ.Step() // ℓ = 1
	for ell := 2; ell <= 100; ell++ {
		// CollisionProb at state ℓ−1 equals P{N_ℓ = N_{ℓ-1}}.
		want := CollisionProbClosed(12, ell)
		if got := occ.CollisionProb(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("collision prob at ell=%d: %v vs %v", ell, got, want)
		}
		occ.Step()
	}
}

func TestMonotonicities(t *testing.T) {
	// L grows with k, with s, and as eta shrinks; E grows with k and as eta
	// shrinks — these are the qualitative claims behind Figures 3 and 4.
	l1, _ := TargetedEffort(10, 10, 1e-2)
	l2, _ := TargetedEffort(20, 10, 1e-2)
	if l2 <= l1 {
		t.Errorf("L not increasing in k: %d then %d", l1, l2)
	}
	l3, _ := TargetedEffort(10, 20, 1e-2)
	if l3 <= l1 {
		t.Errorf("L not increasing in s: %d then %d", l1, l3)
	}
	l4, _ := TargetedEffort(10, 10, 1e-4)
	if l4 <= l1 {
		t.Errorf("L not increasing as eta shrinks: %d then %d", l1, l4)
	}
	e1, _ := FloodingEffort(10, 1e-2)
	e2, _ := FloodingEffort(20, 1e-2)
	e3, _ := FloodingEffort(10, 1e-4)
	if e2 <= e1 || e3 <= e1 {
		t.Errorf("E not monotone: e1=%d e2=%d e3=%d", e1, e2, e3)
	}
}

func TestFloodingUpperBoundsTargeted(t *testing.T) {
	// The paper remarks that Figure 4 (E_k) upper-bounds L_{k,s}. That holds
	// whenever s is small relative to k: for s = 1, once all urns are filled
	// the next ball collides surely, so L_{k,1} ≤ E_k + 1 for any eta; and at
	// the paper's own Figure settings (s = 10, k ≥ 50) the bound is strict.
	for _, k := range []int{10, 50, 100} {
		for _, eta := range []float64{1e-1, 1e-3} {
			l1, err := TargetedEffort(k, 1, eta)
			if err != nil {
				t.Fatal(err)
			}
			e, err := FloodingEffort(k, eta)
			if err != nil {
				t.Fatal(err)
			}
			if e+1 < l1 {
				t.Errorf("k=%d eta=%v: E_k=%d far below L_{k,1}=%d", k, eta, e, l1)
			}
		}
	}
	for _, k := range []int{50, 100, 250} {
		l, err := TargetedEffort(k, 10, 1e-1)
		if err != nil {
			t.Fatal(err)
		}
		e, err := FloodingEffort(k, 1e-1)
		if err != nil {
			t.Fatal(err)
		}
		if e < l {
			t.Errorf("k=%d: E_k=%d below L_{k,10}=%d at the paper's settings", k, e, l)
		}
	}
}

// TestUpperBoundCornerCase documents where the paper's "E_k upper-bounds
// L_{k,s}" prose breaks: with many rows and few columns the targeted attack
// needs MORE distinct ids than flooding (a collision must happen in every
// row simultaneously with high per-row confidence).
func TestUpperBoundCornerCase(t *testing.T) {
	l, err := TargetedEffort(10, 10, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := FloodingEffort(10, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	if l != 45 || e != 44 {
		t.Fatalf("corner case moved: L_{10,10}(0.1)=%d (want 45), E_10(0.1)=%d (want 44)", l, e)
	}
}

func TestStirlingKnownValues(t *testing.T) {
	cases := []struct {
		ell, i int
		want   int64
	}{
		{1, 1, 1},
		{2, 1, 1}, {2, 2, 1},
		{3, 1, 1}, {3, 2, 3}, {3, 3, 1},
		{4, 2, 7}, {4, 3, 6},
		{5, 2, 15}, {5, 3, 25}, {5, 4, 10},
		{10, 5, 42525},
		{3, 4, 0}, {0, 1, 0}, {4, 0, 0},
	}
	for _, c := range cases {
		if got := Stirling2(c.ell, c.i); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("S(%d,%d) = %v, want %d", c.ell, c.i, got, c.want)
		}
	}
}

func TestStirlingExplicitFormula(t *testing.T) {
	// Cross-check the recursion against the explicit alternating sum
	// S(ℓ,i) = (1/i!)·Σ_h (−1)^h C(i,h)(i−h)^ℓ  (Relation 4).
	for ell := 1; ell <= 12; ell++ {
		for i := 1; i <= ell; i++ {
			sum := new(big.Int)
			for h := 0; h <= i; h++ {
				term := new(big.Int).Binomial(int64(i), int64(h))
				pow := new(big.Int).Exp(big.NewInt(int64(i-h)), big.NewInt(int64(ell)), nil)
				term.Mul(term, pow)
				if h%2 == 1 {
					term.Neg(term)
				}
				sum.Add(sum, term)
			}
			var fact big.Int
			fact.MulRange(1, int64(i))
			sum.Div(sum, &fact)
			if got := Stirling2(ell, i); got.Cmp(sum) != 0 {
				t.Fatalf("S(%d,%d) recursion %v != explicit %v", ell, i, got, sum)
			}
		}
	}
}

func TestUkPMF(t *testing.T) {
	// The PMF must sum to ~1 and put no mass below k.
	const k = 8
	if p, err := UkPMF(k, k-1); err != nil || p != 0 {
		t.Fatalf("P{U_k = k-1} = %v, %v; want 0", p, err)
	}
	sum := 0.0
	for ell := k; ell < 400; ell++ {
		p, err := UkPMF(k, ell)
		if err != nil {
			t.Fatal(err)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("U_k PMF sums to %v", sum)
	}
	if p, err := UkPMF(1, 1); err != nil || p != 1 {
		t.Fatalf("P{U_1 = 1} = %v, %v; want 1", p, err)
	}
}

func TestUkMeanMatchesHarmonic(t *testing.T) {
	const k = 12
	mean := 0.0
	for ell := k; ell < 2000; ell++ {
		p, err := UkPMF(k, ell)
		if err != nil {
			t.Fatal(err)
		}
		mean += float64(ell) * p
	}
	want := HarmonicMeanFillTime(k)
	if math.Abs(mean-want)/want > 1e-3 {
		t.Fatalf("E[U_%d] = %v, want k·H_k = %v", k, mean, want)
	}
}

func TestEmpiricalOccupancyAgreesWithDP(t *testing.T) {
	// Monte-Carlo simulation of the urn process vs the DP distribution.
	const k, ell, trials = 10, 15, 200000
	r := rng.New(99)
	counts := make([]int, k+1)
	occupied := make([]bool, k)
	for tr := 0; tr < trials; tr++ {
		for i := range occupied {
			occupied[i] = false
		}
		n := 0
		for b := 0; b < ell; b++ {
			u := r.Intn(k)
			if !occupied[u] {
				occupied[u] = true
				n++
			}
		}
		counts[n]++
	}
	occ, err := NewOccupancy(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ell; i++ {
		occ.Step()
	}
	for i := 1; i <= k; i++ {
		got := float64(counts[i]) / trials
		want := occ.P(i)
		tol := 5*math.Sqrt(want*(1-want)/trials) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("P{N_%d=%d}: empirical %v vs DP %v (tol %v)", ell, i, got, want, tol)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewOccupancy(0); err == nil {
		t.Error("NewOccupancy(0) should fail")
	}
	if _, err := TargetedEffort(0, 5, 0.1); err == nil {
		t.Error("TargetedEffort with k=0 should fail")
	}
	if _, err := TargetedEffort(5, 0, 0.1); err == nil {
		t.Error("TargetedEffort with s=0 should fail")
	}
	if _, err := TargetedEffort(5, 5, 0); err == nil {
		t.Error("TargetedEffort with eta=0 should fail")
	}
	if _, err := TargetedEffort(5, 5, 1); err == nil {
		t.Error("TargetedEffort with eta=1 should fail")
	}
	if _, err := FloodingEffort(0, 0.1); err == nil {
		t.Error("FloodingEffort with k=0 should fail")
	}
	if _, err := UkPMF(0, 3); err == nil {
		t.Error("UkPMF with k=0 should fail")
	}
}

func TestEdgeCases(t *testing.T) {
	// k=1: the second ball always collides regardless of s and eta.
	for _, s := range []int{1, 10} {
		got, err := TargetedEffort(1, s, 0.5)
		if err != nil || got != 2 {
			t.Errorf("L_{1,%d} = %d, %v; want 2", s, got, err)
		}
	}
	got, err := FloodingEffort(1, 0.5)
	if err != nil || got != 1 {
		t.Errorf("E_1 = %d, %v; want 1", got, err)
	}
}

func BenchmarkTargetedEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := TargetedEffort(250, 10, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloodingEffort(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FloodingEffort(250, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOccupancyStep(b *testing.B) {
	occ, err := NewOccupancy(500)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ.Step()
	}
}
