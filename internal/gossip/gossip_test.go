package gossip

import (
	"math"
	"testing"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

func kfFactory(c, k, s int) SamplerFactory {
	return func(node int, r *rng.Xoshiro) (core.Sampler, error) {
		return core.NewKnowledgeFree(c, k, s, r)
	}
}

func baseConfig() Config {
	return Config{
		Nodes:             120,
		MaliciousFraction: 0.1,
		SybilIDs:          60,
		Fanout:            3,
		ForwardBuffer:     16,
		Burst:             8,
		Degree:            4,
		Seed:              1,
	}
}

func TestGraphRing(t *testing.T) {
	g, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || !g.Connected() {
		t.Fatal("ring not connected")
	}
	for i := 0; i < 5; i++ {
		if g.Degree(i) != 2 {
			t.Fatalf("ring degree %d at node %d", g.Degree(i), i)
		}
	}
	if _, err := NewRing(2); err == nil {
		t.Error("tiny ring should fail")
	}
}

func TestGraphRingWithChords(t *testing.T) {
	g, err := NewRingWithChords(50, 100, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("chorded ring must stay connected")
	}
	total := 0
	for i := 0; i < 50; i++ {
		total += g.Degree(i)
	}
	if total <= 100 { // ring alone has 100 half-edges
		t.Fatalf("no chords added: total degree %d", total)
	}
	if _, err := NewRingWithChords(10, -1, rng.New(1)); err == nil {
		t.Error("negative chords should fail")
	}
	if _, err := NewRingWithChords(10, 5, nil); err == nil {
		t.Error("nil rng with chords should fail")
	}
	if _, err := NewRingWithChords(10, 0, nil); err != nil {
		t.Error("zero chords should not need an rng")
	}
}

func TestGraphKOut(t *testing.T) {
	g, err := NewKOut(200, 3, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("3-out graph over 200 nodes should be connected")
	}
	// No self-loops, no duplicate edges.
	for i := 0; i < g.NumNodes(); i++ {
		seen := map[int]bool{}
		for _, v := range g.Neighbors(i) {
			if v == i {
				t.Fatalf("self loop at %d", i)
			}
			if seen[v] {
				t.Fatalf("duplicate edge %d-%d", i, v)
			}
			seen[v] = true
		}
	}
	if _, err := NewKOut(1, 1, rng.New(1)); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := NewKOut(10, 0, rng.New(1)); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewKOut(10, 10, rng.New(1)); err == nil {
		t.Error("k=n should fail")
	}
	if _, err := NewKOut(10, 2, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestNeighborsReturnsCopy(t *testing.T) {
	g, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	nb := g.Neighbors(0)
	nb[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Fatal("Neighbors exposed internal state")
	}
}

func TestRandomWalkVisitsEverything(t *testing.T) {
	g, err := NewRingWithChords(30, 30, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewRandomWalk(g, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		seen[w.Next()] = true
	}
	if len(seen) != 30 {
		t.Fatalf("walk visited %d of 30 nodes", len(seen))
	}
}

func TestRandomWalkValidation(t *testing.T) {
	g, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRandomWalk(nil, 0, rng.New(1)); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := NewRandomWalk(g, -1, rng.New(1)); err == nil {
		t.Error("negative start should fail")
	}
	if _, err := NewRandomWalk(g, 4, rng.New(1)); err == nil {
		t.Error("start out of range should fail")
	}
	if _, err := NewRandomWalk(g, 0, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Nodes = 2 },
		func(c *Config) { c.MaliciousFraction = -0.1 },
		func(c *Config) { c.MaliciousFraction = 1 },
		func(c *Config) { c.SybilIDs = -1 },
		func(c *Config) { c.SybilIDs = 0 }, // malicious nodes but no sybil ids
		func(c *Config) { c.Fanout = 0 },
		func(c *Config) { c.ForwardBuffer = -1 },
		func(c *Config) { c.Burst = 0 },
		func(c *Config) { c.Degree = 1 },
	}
	for i, mut := range mutations {
		cfg := baseConfig()
		mut(&cfg)
		if _, err := NewNetwork(cfg, kfFactory(5, 10, 5)); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
	if _, err := NewNetwork(baseConfig(), nil); err == nil {
		t.Error("nil factory should fail")
	}
}

func TestNetworkRolesAndSamplers(t *testing.T) {
	cfg := baseConfig()
	nw, err := NewNetwork(cfg, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	numMal := nw.NumMalicious()
	if numMal != 12 {
		t.Fatalf("malicious nodes = %d, want 12", numMal)
	}
	for i := 0; i < cfg.Nodes; i++ {
		if i < numMal {
			if nw.Role(i) != Malicious || nw.Sampler(i) != nil {
				t.Fatalf("node %d should be malicious without sampler", i)
			}
		} else {
			if nw.Role(i) != Correct || nw.Sampler(i) == nil {
				t.Fatalf("node %d should be correct with sampler", i)
			}
		}
	}
	if got := len(nw.CorrectIndices()); got != cfg.Nodes-numMal {
		t.Fatalf("correct indices = %d", got)
	}
	if !nw.Graph().Connected() {
		t.Fatal("network overlay must be connected")
	}
}

func TestRunProducesStreams(t *testing.T) {
	cfg := baseConfig()
	nw, err := NewNetwork(cfg, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(30); err != nil {
		t.Fatal(err)
	}
	if nw.Rounds() != 30 {
		t.Fatalf("rounds = %d", nw.Rounds())
	}
	// Every correct node must have received ids and produced outputs.
	for _, i := range nw.CorrectIndices() {
		if nw.InputHistogram(i).Total() == 0 {
			t.Fatalf("node %d received nothing", i)
		}
		if nw.OutputHistogram(i).Total() != nw.InputHistogram(i).Total() {
			t.Fatalf("node %d output %d ids for %d inputs", i,
				nw.OutputHistogram(i).Total(), nw.InputHistogram(i).Total())
		}
	}
	if err := nw.Run(-1); err == nil {
		t.Error("negative rounds should fail")
	}
}

func TestSybilPressureGrowsWithBurst(t *testing.T) {
	quiet := baseConfig()
	quiet.Burst = 1
	quiet.Seed = 11
	loud := baseConfig()
	loud.Burst = 20
	loud.Seed = 11
	nq, err := NewNetwork(quiet, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NewNetwork(loud, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := nq.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := nl.Run(20); err != nil {
		t.Fatal(err)
	}
	pq, pl := nq.SybilPressure(), nl.SybilPressure()
	if !(pl > pq && pq > 0) {
		t.Fatalf("sybil pressure: burst=1 %v, burst=20 %v", pq, pl)
	}
	if pl < 0.4 {
		t.Fatalf("loud attack pressure %v unexpectedly weak", pl)
	}
}

// TestSamplingServiceDefendsOverlay is the end-to-end claim: under a Sybil
// flood, the per-node knowledge-free samplers recover a substantial share
// of the input stream's divergence from uniform once they reach their
// stationary regime (warm-up, then a measured steady-state window — the
// paper's Figure 9 shows the knowledge-free strategy needs thousands of
// stream elements to converge).
func TestSamplingServiceDefendsOverlay(t *testing.T) {
	cfg := baseConfig()
	cfg.Burst = 12
	nw, err := NewNetwork(cfg, kfFactory(25, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(600); err != nil {
		t.Fatal(err)
	}
	nw.ResetStreamStats()
	if err := nw.Run(900); err != nil {
		t.Fatal(err)
	}
	sum, err := nw.CorrectGains()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nodes < 100 {
		t.Fatalf("only %d nodes scoreable", sum.Nodes)
	}
	if sum.Mean < 0.25 {
		t.Fatalf("mean steady-state gain %v too low under sybil flood", sum.Mean)
	}
	if sum.Min < -0.05 {
		t.Fatalf("some node had negative steady-state gain %v", sum.Min)
	}
	if nw.SampleCoverage() < cfg.Nodes/2 {
		t.Fatalf("sample coverage %d too small", nw.SampleCoverage())
	}
}

// TestParallelMatchesSequential: the goroutine engine must be bit-identical
// to the sequential one under the same seed.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := baseConfig()
	seq, err := NewNetwork(cfg, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewNetwork(cfg, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.Run(25); err != nil {
		t.Fatal(err)
	}
	if err := par.RunParallel(25, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Nodes; i++ {
		ci, pi := seq.InputHistogram(i).Counts(), par.InputHistogram(i).Counts()
		if len(ci) != len(pi) {
			t.Fatalf("node %d: input support differs (%d vs %d)", i, len(ci), len(pi))
		}
		for id, c := range ci {
			if pi[id] != c {
				t.Fatalf("node %d id %d: sequential %d vs parallel %d", i, id, c, pi[id])
			}
		}
		co, po := seq.OutputHistogram(i).Counts(), par.OutputHistogram(i).Counts()
		for id, c := range co {
			if po[id] != c {
				t.Fatalf("node %d output id %d: sequential %d vs parallel %d", i, id, c, po[id])
			}
		}
	}
}

func TestRunParallelValidation(t *testing.T) {
	nw, err := NewNetwork(baseConfig(), kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.RunParallel(1, 0); err == nil {
		t.Error("zero workers should fail")
	}
	if err := nw.RunParallel(-1, 2); err == nil {
		t.Error("negative rounds should fail")
	}
	// More workers than nodes must still work.
	if err := nw.RunParallel(1, 10_000); err != nil {
		t.Fatal(err)
	}
}

// TestNoAttackOutputNotWorseThanInput: with zero malicious nodes, each
// node's input is biased only by its own neighbourhood; in steady state the
// service must not *add* divergence.
func TestNoAttackOutputNotWorseThanInput(t *testing.T) {
	cfg := baseConfig()
	cfg.MaliciousFraction = 0
	cfg.SybilIDs = 0
	nw, err := NewNetwork(cfg, kfFactory(25, 8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(400); err != nil {
		t.Fatal(err)
	}
	nw.ResetStreamStats()
	if err := nw.Run(600); err != nil {
		t.Fatal(err)
	}
	pop := cfg.Nodes
	worse := 0
	scored := 0
	for _, i := range nw.CorrectIndices() {
		din, err := nw.InputHistogram(i).KLvsUniform(pop)
		if err != nil {
			continue
		}
		dout, err := nw.OutputHistogram(i).KLvsUniform(pop)
		if err != nil {
			continue
		}
		scored++
		if dout > din*1.5+0.05 {
			worse++
		}
	}
	if scored == 0 {
		t.Fatal("no node scoreable")
	}
	if frac := float64(worse) / float64(scored); frac > 0.1 {
		t.Fatalf("%v of nodes got meaningfully worse without an attack", frac)
	}
}

func TestSampleCoverageGrowsWithRounds(t *testing.T) {
	cfg := baseConfig()
	nw, err := NewNetwork(cfg, kfFactory(8, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Run(2); err != nil {
		t.Fatal(err)
	}
	early := nw.SampleCoverage()
	if err := nw.Run(100); err != nil {
		t.Fatal(err)
	}
	late := nw.SampleCoverage()
	// Memory-union coverage fluctuates with evictions; allow slack but it
	// must broadly grow as ids diffuse through the overlay.
	if late < early-10 {
		t.Fatalf("coverage collapsed: %d -> %d", early, late)
	}
	if late < 40 {
		t.Fatalf("coverage %d too small after 102 rounds", late)
	}
}

func TestGainSummaryBounds(t *testing.T) {
	cfg := baseConfig()
	nw, err := NewNetwork(cfg, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.CorrectGains(); err == nil {
		t.Error("gains before any round should fail")
	}
	if err := nw.Run(40); err != nil {
		t.Fatal(err)
	}
	sum, err := nw.CorrectGains()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Min > sum.Mean || sum.Mean > sum.Max {
		t.Fatalf("summary ordering broken: %+v", sum)
	}
	if sum.Max > 1+1e-9 {
		t.Fatalf("gain above 1: %v", sum.Max)
	}
	if math.IsNaN(sum.Mean) {
		t.Fatal("mean gain is NaN")
	}
}

func TestMetricsHistogramsAreLive(t *testing.T) {
	// The histogram accessors return live views (documented); verify reads
	// observe simulation progress.
	cfg := baseConfig()
	nw, err := NewNetwork(cfg, kfFactory(5, 10, 5))
	if err != nil {
		t.Fatal(err)
	}
	i := nw.CorrectIndices()[0]
	h := nw.InputHistogram(i)
	before := h.Total()
	if err := nw.Run(5); err != nil {
		t.Fatal(err)
	}
	if h.Total() == before {
		t.Fatal("histogram view did not observe new rounds")
	}
	_ = metrics.NewHistogram() // keep metrics import for the live-view contrast
}

func BenchmarkGossipRoundSequential(b *testing.B) {
	cfg := baseConfig()
	cfg.Nodes = 300
	nw, err := NewNetwork(cfg, kfFactory(10, 10, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.Run(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGossipRoundParallel(b *testing.B) {
	cfg := baseConfig()
	cfg.Nodes = 300
	nw, err := NewNetwork(cfg, kfFactory(10, 10, 5))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := nw.RunParallel(1, 8); err != nil {
			b.Fatal(err)
		}
	}
}
