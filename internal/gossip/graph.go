// Package gossip simulates the dissemination substrate the paper assumes:
// each correct node's input stream σ_i is produced by push gossip (or random
// walks) over a weakly connected overlay, and malicious nodes bias those
// streams by injecting the Sybil identifiers they control (Section III).
//
// The paper's analysis is explicitly independent of how streams are built;
// this package provides a concrete, attack-capable instantiation so the
// sampling service can be exercised end-to-end: overlay graphs, a
// deterministic round-based engine (with an equivalent goroutine-parallel
// driver), per-node samplers and per-node stream statistics.
package gossip

import (
	"fmt"

	"nodesampling/internal/rng"
)

// Graph is an undirected overlay over nodes 0..n−1.
type Graph struct {
	n   int
	adj [][]int
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// Degree returns the number of neighbours of node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// Neighbors returns a copy of i's adjacency list.
func (g *Graph) Neighbors(i int) []int {
	return append([]int(nil), g.adj[i]...)
}

// neighborAt returns the j-th neighbour without copying (engine hot path).
func (g *Graph) neighborAt(i, j int) int { return g.adj[i][j] }

// NewRing returns the n-cycle, the minimal connected overlay.
func NewRing(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gossip: ring needs at least 3 nodes, got %d", n)
	}
	g := &Graph{n: n, adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		g.adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return g, nil
}

// NewRingWithChords returns the n-cycle augmented with `chords` random
// extra edges — a connected small-world overlay. Duplicate and self edges
// are skipped, so the realised chord count may be lower.
func NewRingWithChords(n, chords int, r *rng.Xoshiro) (*Graph, error) {
	if chords < 0 {
		return nil, fmt.Errorf("gossip: negative chord count %d", chords)
	}
	if r == nil && chords > 0 {
		return nil, fmt.Errorf("gossip: nil random source")
	}
	g, err := NewRing(n)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]int]bool, n+chords)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		seen[[2]int{a, b}] = true
	}
	for c := 0; c < chords; c++ {
		a, b := r.Intn(n), r.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			continue
		}
		seen[[2]int{a, b}] = true
		g.adj[a] = append(g.adj[a], b)
		g.adj[b] = append(g.adj[b], a)
	}
	return g, nil
}

// NewKOut returns the undirected union of a k-out digraph: every node draws
// k random out-neighbours and each arc becomes an undirected edge. For
// k ≥ 2 the result is connected with overwhelming probability; call
// Connected to verify.
func NewKOut(n, k int, r *rng.Xoshiro) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gossip: k-out graph needs at least 2 nodes, got %d", n)
	}
	if k < 1 || k >= n {
		return nil, fmt.Errorf("gossip: out-degree %d outside [1, %d)", k, n)
	}
	if r == nil {
		return nil, fmt.Errorf("gossip: nil random source")
	}
	g := &Graph{n: n, adj: make([][]int, n)}
	seen := make(map[[2]int]bool, n*k)
	for i := 0; i < n; i++ {
		for d := 0; d < k; d++ {
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.adj[a] = append(g.adj[a], b)
			g.adj[b] = append(g.adj[b], a)
		}
	}
	return g, nil
}

// Connected reports whether the overlay is (weakly) connected — the
// assumption of Section III-C under which every correct id has a non-null
// probability of reaching every stream.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return false
	}
	visited := make([]bool, g.n)
	queue := []int{0}
	visited[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == g.n
}

// RandomWalk is a stream source produced by a random walk on the overlay:
// Next returns the identifier of the next visited node. It is the paper's
// alternative stream construction ("node ids received during random walks").
type RandomWalk struct {
	g   *Graph
	cur int
	r   *rng.Xoshiro
}

// NewRandomWalk starts a walk at node start.
func NewRandomWalk(g *Graph, start int, r *rng.Xoshiro) (*RandomWalk, error) {
	if g == nil {
		return nil, fmt.Errorf("gossip: nil graph")
	}
	if start < 0 || start >= g.n {
		return nil, fmt.Errorf("gossip: start node %d outside [0,%d)", start, g.n)
	}
	if r == nil {
		return nil, fmt.Errorf("gossip: nil random source")
	}
	if g.Degree(start) == 0 {
		return nil, fmt.Errorf("gossip: start node %d is isolated", start)
	}
	return &RandomWalk{g: g, cur: start, r: r}, nil
}

// Next advances the walk one step and returns the visited node's id.
func (w *RandomWalk) Next() uint64 {
	d := w.g.Degree(w.cur)
	w.cur = w.g.neighborAt(w.cur, w.r.Intn(d))
	return uint64(w.cur)
}
