package gossip

import (
	"fmt"
	"sort"
	"sync"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
)

// Role classifies an overlay node.
type Role int

// Node roles. Malicious nodes are fully controlled by the adversary of
// Section III-B: instead of gossiping honestly, they flood their neighbours
// with the Sybil identifiers the adversary manufactured.
const (
	Correct Role = iota + 1
	Malicious
)

// Config parameterises a simulated overlay.
type Config struct {
	// Nodes is the number of real nodes in the overlay (correct + malicious).
	Nodes int
	// MaliciousFraction of the nodes is controlled by the adversary.
	MaliciousFraction float64
	// SybilIDs is the number of distinct fake identifiers the adversary
	// manufactured (ℓ in the paper). They occupy the id range
	// [Nodes, Nodes+SybilIDs).
	SybilIDs int
	// Fanout is how many random neighbours each node pushes to per round.
	Fanout int
	// ForwardBuffer is the per-node buffer of recently received ids that a
	// correct node re-forwards (rumor mongering). Zero disables forwarding.
	ForwardBuffer int
	// Burst is how many ids a malicious node pushes per neighbour per round
	// (correct nodes push 1 own id + up to 2 forwarded ids).
	Burst int
	// Degree is the out-degree used to build the k-out overlay.
	Degree int
	// Seed drives all randomness in the simulation.
	Seed uint64
}

func (c Config) validate() error {
	if c.Nodes < 3 {
		return fmt.Errorf("gossip: need at least 3 nodes, got %d", c.Nodes)
	}
	if c.MaliciousFraction < 0 || c.MaliciousFraction >= 1 {
		return fmt.Errorf("gossip: malicious fraction %v outside [0,1)", c.MaliciousFraction)
	}
	if c.SybilIDs < 0 {
		return fmt.Errorf("gossip: negative sybil id count %d", c.SybilIDs)
	}
	if c.MaliciousFraction > 0 && c.SybilIDs == 0 {
		return fmt.Errorf("gossip: malicious nodes present but no sybil ids configured")
	}
	if c.Fanout < 1 {
		return fmt.Errorf("gossip: fanout must be at least 1, got %d", c.Fanout)
	}
	if c.ForwardBuffer < 0 {
		return fmt.Errorf("gossip: negative forward buffer %d", c.ForwardBuffer)
	}
	if c.Burst < 1 {
		return fmt.Errorf("gossip: burst must be at least 1, got %d", c.Burst)
	}
	if c.Degree < 2 {
		return fmt.Errorf("gossip: degree must be at least 2, got %d", c.Degree)
	}
	return nil
}

// SamplerFactory builds the per-node sampling service. The node index and a
// private random generator are provided; returning a nil Sampler disables
// sampling at that node (its stream statistics are still collected).
type SamplerFactory func(node int, r *rng.Xoshiro) (core.Sampler, error)

// node is the per-node simulation state.
type node struct {
	role    Role
	r       *rng.Xoshiro
	sampler core.Sampler
	forward []uint64 // ring buffer of recently received ids
	fwdPos  int
	inbox   []uint64
	input   *metrics.Histogram
	output  *metrics.Histogram
}

// Network is a simulated overlay running the node sampling service at every
// correct node.
type Network struct {
	cfg    Config
	graph  *Graph
	nodes  []*node
	rounds int
}

// NewNetwork builds the overlay (k-out graph, retrying the seed until
// connected), assigns the first ⌊n·f⌋ node indices as malicious, and
// installs a sampler at every correct node via the factory.
func NewNetwork(cfg Config, factory SamplerFactory) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		return nil, fmt.Errorf("gossip: nil sampler factory")
	}
	root := rng.New(cfg.Seed)
	var graph *Graph
	for attempt := 0; ; attempt++ {
		g, err := NewKOut(cfg.Nodes, cfg.Degree, root)
		if err != nil {
			return nil, err
		}
		if g.Connected() {
			graph = g
			break
		}
		if attempt == 16 {
			return nil, fmt.Errorf("gossip: could not build a connected %d-out overlay over %d nodes", cfg.Degree, cfg.Nodes)
		}
	}
	numMal := int(float64(cfg.Nodes) * cfg.MaliciousFraction)
	nodes := make([]*node, cfg.Nodes)
	for i := range nodes {
		nd := &node{
			role:   Correct,
			r:      root.Split(),
			input:  metrics.NewHistogram(),
			output: metrics.NewHistogram(),
		}
		if i < numMal {
			nd.role = Malicious
		} else {
			s, err := factory(i, nd.r.Split())
			if err != nil {
				return nil, fmt.Errorf("gossip: sampler for node %d: %w", i, err)
			}
			nd.sampler = s
		}
		if cfg.ForwardBuffer > 0 {
			nd.forward = make([]uint64, 0, cfg.ForwardBuffer)
		}
		nodes[i] = nd
	}
	return &Network{cfg: cfg, graph: graph, nodes: nodes}, nil
}

// Graph exposes the overlay topology.
func (nw *Network) Graph() *Graph { return nw.graph }

// Rounds returns how many gossip rounds have been simulated.
func (nw *Network) Rounds() int { return nw.rounds }

// NumMalicious returns the number of adversary-controlled nodes.
func (nw *Network) NumMalicious() int {
	return int(float64(nw.cfg.Nodes) * nw.cfg.MaliciousFraction)
}

// Role returns the role of node i.
func (nw *Network) Role(i int) Role { return nw.nodes[i].role }

// InputHistogram returns the id frequencies node i has received so far.
func (nw *Network) InputHistogram(i int) *metrics.Histogram { return nw.nodes[i].input }

// OutputHistogram returns the id frequencies node i's sampler has emitted.
func (nw *Network) OutputHistogram(i int) *metrics.Histogram { return nw.nodes[i].output }

// Sampler returns node i's sampling service (nil for malicious nodes).
func (nw *Network) Sampler(i int) core.Sampler { return nw.nodes[i].sampler }

// produce fills the per-node outboxes for one round. Message order within a
// node is deterministic given its private generator.
func (nw *Network) produce(i int, outbox *[]message) {
	nd := nw.nodes[i]
	deg := nw.graph.Degree(i)
	for f := 0; f < nw.cfg.Fanout; f++ {
		dst := nw.graph.neighborAt(i, nd.r.Intn(deg))
		if nd.role == Malicious {
			for b := 0; b < nw.cfg.Burst; b++ {
				sybil := uint64(nw.cfg.Nodes) + nd.r.Uint64n(uint64(nw.cfg.SybilIDs))
				*outbox = append(*outbox, message{to: dst, id: sybil})
			}
			continue
		}
		// Correct behaviour: push own id plus up to two forwarded ids.
		*outbox = append(*outbox, message{to: dst, id: uint64(i)})
		for j := 0; j < 2 && len(nd.forward) > 0; j++ {
			pick := nd.forward[nd.r.Intn(len(nd.forward))]
			*outbox = append(*outbox, message{to: dst, id: pick})
		}
	}
}

// consume lets node i process its inbox through its sampler and stream
// statistics, and refresh its forward buffer.
func (nw *Network) consume(i int) {
	nd := nw.nodes[i]
	for _, id := range nd.inbox {
		nd.input.Add(id)
		if nd.sampler != nil {
			nd.output.Add(nd.sampler.Process(id))
		}
		if cap(nd.forward) > 0 {
			if len(nd.forward) < cap(nd.forward) {
				nd.forward = append(nd.forward, id)
			} else {
				nd.forward[nd.fwdPos] = id
				nd.fwdPos = (nd.fwdPos + 1) % cap(nd.forward)
			}
		}
	}
	nd.inbox = nd.inbox[:0]
}

type message struct {
	to int
	id uint64
}

// Run simulates `rounds` gossip rounds sequentially and deterministically.
func (nw *Network) Run(rounds int) error {
	if rounds < 0 {
		return fmt.Errorf("gossip: negative round count %d", rounds)
	}
	outbox := make([]message, 0, nw.cfg.Nodes*nw.cfg.Fanout*(nw.cfg.Burst+2))
	for r := 0; r < rounds; r++ {
		outbox = outbox[:0]
		for i := range nw.nodes {
			nw.produce(i, &outbox)
		}
		for _, m := range outbox {
			nw.nodes[m.to].inbox = append(nw.nodes[m.to].inbox, m.id)
		}
		for i := range nw.nodes {
			nw.consume(i)
		}
		nw.rounds++
	}
	return nil
}

// RunParallel simulates rounds with a goroutine pool: each round runs a
// parallel produce phase, a deterministic delivery phase, and a parallel
// consume phase. Results are bit-identical to Run because every node owns a
// private generator and deliveries are ordered by sender index.
func (nw *Network) RunParallel(rounds, workers int) error {
	if rounds < 0 {
		return fmt.Errorf("gossip: negative round count %d", rounds)
	}
	if workers < 1 {
		return fmt.Errorf("gossip: worker count must be at least 1, got %d", workers)
	}
	n := len(nw.nodes)
	if workers > n {
		workers = n
	}
	outboxes := make([][]message, n)
	for r := 0; r < rounds; r++ {
		runSharded(n, workers, func(i int) {
			outboxes[i] = outboxes[i][:0]
			nw.produce(i, &outboxes[i])
		})
		// Delivery: sender order 0..n−1 matches the sequential engine.
		for i := 0; i < n; i++ {
			for _, m := range outboxes[i] {
				nw.nodes[m.to].inbox = append(nw.nodes[m.to].inbox, m.id)
			}
		}
		runSharded(n, workers, func(i int) {
			nw.consume(i)
		})
		nw.rounds++
	}
	return nil
}

// runSharded applies fn to every index in [0, n) using `workers` goroutines
// over contiguous shards, then waits for completion.
func runSharded(n, workers int, fn func(i int)) {
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ResetStreamStats clears every node's input/output histograms while
// keeping samplers, sketches and buffers warm. Experiments call it after a
// warm-up phase so gains are measured in steady state (the paper's Figure 9
// shows the knowledge-free strategy needs thousands of elements to reach its
// stationary regime).
func (nw *Network) ResetStreamStats() {
	for _, nd := range nw.nodes {
		nd.input.Reset()
		nd.output.Reset()
	}
}

// GainSummary aggregates the per-node KL gain of the sampling service over
// all correct nodes; population is the id-space size the uniformity is
// measured against (real nodes + sybil ids).
type GainSummary struct {
	Mean, Min, Max float64
	Nodes          int // correct nodes with enough data to score
}

// CorrectGains computes the KL gain at every correct node. Nodes whose
// input stream is still too uniform or too short to score are skipped.
func (nw *Network) CorrectGains() (GainSummary, error) {
	population := nw.cfg.Nodes + nw.cfg.SybilIDs
	sum := GainSummary{Min: 2, Max: -2}
	var gains []float64
	for _, nd := range nw.nodes {
		if nd.role != Correct || nd.sampler == nil {
			continue
		}
		if nd.input.Total() == 0 || nd.output.Total() == 0 {
			continue
		}
		g, err := metrics.Gain(nd.input, nd.output, population)
		if err != nil {
			continue // zero-divergence or degenerate input at this node
		}
		gains = append(gains, g)
		if g < sum.Min {
			sum.Min = g
		}
		if g > sum.Max {
			sum.Max = g
		}
	}
	if len(gains) == 0 {
		return GainSummary{}, fmt.Errorf("gossip: no correct node produced scoreable streams")
	}
	total := 0.0
	for _, g := range gains {
		total += g
	}
	sum.Mean = total / float64(len(gains))
	sum.Nodes = len(gains)
	return sum, nil
}

// SybilPressure reports which fraction of all ids received by correct nodes
// are sybil identifiers — the observable strength of the attack.
func (nw *Network) SybilPressure() float64 {
	var sybil, total uint64
	limit := uint64(nw.cfg.Nodes)
	for _, nd := range nw.nodes {
		if nd.role != Correct {
			continue
		}
		for id, c := range nd.input.Counts() {
			total += c
			if id >= limit {
				sybil += c
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sybil) / float64(total)
}

// SampleCoverage returns how many distinct correct ids currently appear in
// the union of the correct nodes' sampling memories — a diversity indicator
// used by the epidemic example (a partitioned or eclipsed overlay shows a
// collapsing coverage).
func (nw *Network) SampleCoverage() int {
	seen := make(map[uint64]struct{})
	limit := uint64(nw.cfg.Nodes)
	for _, nd := range nw.nodes {
		if nd.role != Correct || nd.sampler == nil {
			continue
		}
		for _, id := range nd.sampler.Memory() {
			if id < limit {
				seen[id] = struct{}{}
			}
		}
	}
	return len(seen)
}

// sortedCorrectIndices returns the indices of correct nodes in order;
// exposed for deterministic iteration in experiments.
func (nw *Network) sortedCorrectIndices() []int {
	var idx []int
	for i, nd := range nw.nodes {
		if nd.role == Correct {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx
}

// CorrectIndices returns the indices of all correct nodes.
func (nw *Network) CorrectIndices() []int { return nw.sortedCorrectIndices() }
