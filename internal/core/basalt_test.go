package core

import (
	"testing"

	"nodesampling/internal/rng"
)

func TestStrategyBasaltFillsAndSamples(t *testing.T) {
	b, err := NewBasalt(8, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Sample(); ok {
		t.Fatal("empty sampler must not produce a sample")
	}
	b.ProcessBatch([]uint64{42})
	if b.MemorySize() != 8 {
		t.Fatalf("one observed id should fill all slots, got %d", b.MemorySize())
	}
	if id, ok := b.Sample(); !ok || id != 42 {
		t.Fatalf("Sample() = (%d, %v), want (42, true)", id, ok)
	}
	if mem := b.Memory(); len(mem) != 1 || mem[0] != 42 {
		t.Fatalf("Memory() = %v, want [42]", mem)
	}
	if got := b.Estimate(42); got == 0 {
		t.Fatal("resident id must have a positive hit estimate")
	}
	if got := b.Estimate(7); got != 0 {
		t.Fatalf("non-resident Estimate = %d, want 0", got)
	}
}

// Residents are the rank-minimal observed ids, so processing the same id set
// in any order yields the same slot contents.
func TestStrategyBasaltOrderIndependentResidents(t *testing.T) {
	mk := func(order []uint64) *BasaltSampler {
		b, err := NewBasalt(16, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		// Same family for both samplers: overwrite via CloneEmpty trick is
		// unnecessary — NewBasalt(rng.New(5)) draws the same family seed.
		b.ProcessBatch(order)
		return b
	}
	fwd := make([]uint64, 200)
	rev := make([]uint64, 200)
	for i := range fwd {
		fwd[i] = uint64(i + 1)
		rev[len(rev)-1-i] = uint64(i + 1)
	}
	a, z := mk(fwd), mk(rev)
	for i := range a.slots {
		if a.slots[i].id != z.slots[i].id {
			t.Fatalf("slot %d resident differs by order: %d vs %d", i, a.slots[i].id, z.slots[i].id)
		}
	}
}

func TestStrategyBasaltStateRoundTrip(t *testing.T) {
	b, err := NewBasalt(12, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(77)
	for i := 0; i < 500; i++ {
		b.processOne(1 + r.Uint64n(40))
	}
	b.Decay()
	b.Decay()
	state, err := b.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back, err := RestoreBasalt(12, state, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if back.epoch != b.epoch || back.familySeed != b.familySeed || back.filled != b.filled {
		t.Fatal("restored sampler header differs")
	}
	for i := range b.slots {
		if b.slots[i] != back.slots[i] {
			t.Fatalf("slot %d differs after round trip: %+v vs %+v", i, b.slots[i], back.slots[i])
		}
	}
	if _, err := RestoreBasalt(13, state, rng.New(4)); err == nil {
		t.Fatal("capacity mismatch must fail")
	}
	if _, err := RestoreBasalt(12, state[:10], rng.New(4)); err == nil {
		t.Fatal("truncated state must fail")
	}
}

func TestStrategyBasaltMergeAlignsWithUnion(t *testing.T) {
	a, err := NewBasalt(10, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	bc, err := a.CloneEmpty(rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	b := bc.(*BasaltSampler)
	for i := uint64(1); i <= 50; i++ {
		a.processOne(i)
	}
	for i := uint64(51); i <= 100; i++ {
		b.processOne(i)
	}
	union, err := a.CloneEmpty(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	u := union.(*BasaltSampler)
	for i := uint64(1); i <= 100; i++ {
		u.processOne(i)
	}
	if err := a.MergeState(b); err != nil {
		t.Fatal(err)
	}
	for i := range u.slots {
		if a.slots[i].id != u.slots[i].id {
			t.Fatalf("slot %d: merged resident %d, union resident %d", i, a.slots[i].id, u.slots[i].id)
		}
	}
	// Epoch misalignment is refused.
	b.Decay()
	if err := a.MergeState(b); err == nil {
		t.Fatal("merging across decay epochs must fail")
	}
	// Foreign families are refused.
	other, err := NewBasalt(10, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.MergeState(other); err == nil {
		t.Fatal("merging across ranking families must fail")
	}
}

// Decay must actually forget: with periodic slot refreshes, an id observed
// only early in the stream eventually loses all its slots to later arrivals.
func TestStrategyBasaltDecayForgets(t *testing.T) {
	b, err := NewBasalt(4, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	b.processOne(1) // fills all 4 slots
	r := rng.New(55)
	for round := 0; round < 400; round++ {
		for i := 0; i < 16; i++ {
			b.processOne(2 + r.Uint64n(1000))
		}
		b.Decay()
	}
	for i := range b.slots {
		if b.slots[i].id == 1 {
			t.Fatalf("slot %d still holds the initial id after 400 refresh cycles", i)
		}
	}
	if b.epoch != 400 {
		t.Fatalf("epoch = %d, want 400", b.epoch)
	}
}

// RestoreMemory from the snapshot's distinct resident set reconstructs the
// exact slot assignment: every slot's minimum over the full observed stream
// is inside the resident set, so re-minimising over the set is a no-op.
func TestStrategyBasaltRestoreMemoryExact(t *testing.T) {
	b, err := NewBasalt(16, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(32)
	for i := 0; i < 1000; i++ {
		b.processOne(r.Uint64())
	}
	want := make([]uint64, len(b.slots))
	for i := range b.slots {
		want[i] = b.slots[i].id
	}
	clone, err := b.CloneEmpty(rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if err := clone.RestoreMemory(b.Memory()); err != nil {
		t.Fatal(err)
	}
	c := clone.(*BasaltSampler)
	for i := range c.slots {
		if c.slots[i].id != want[i] {
			t.Fatalf("slot %d restored to %d, want %d", i, c.slots[i].id, want[i])
		}
	}
	// Overflow is refused like the knowledge-free Γ restore.
	big := make([]uint64, 17)
	for i := range big {
		big[i] = uint64(i + 1)
	}
	if err := clone.RestoreMemory(big); err == nil {
		t.Fatal("restoring more distinct ids than slots must fail")
	}
}
