package core

import (
	"strings"
	"testing"

	"nodesampling/internal/cms"
	"nodesampling/internal/rng"
)

func TestStrategyRegistryNames(t *testing.T) {
	names := Strategies()
	want := map[string]bool{DefaultStrategy: false, "basalt": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("Strategies() = %v, missing %q", names, n)
		}
	}
	if _, err := NewFactory("no-such-strategy", StrategyParams{}); err == nil {
		t.Fatal("unknown strategy name must fail")
	} else if !strings.Contains(err.Error(), "no-such-strategy") {
		t.Fatalf("error should name the strategy: %v", err)
	}
	f, err := NewFactory("", StrategyParams{K: 8, S: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != DefaultStrategy {
		t.Fatalf("empty name should resolve to %q, got %q", DefaultStrategy, f.Name)
	}
}

// Every registered strategy must satisfy the full PoolSampler contract:
// build, process, sample, marshal, restore with identical estimates, clone,
// and merge.
func TestStrategyContractAllBackends(t *testing.T) {
	for _, name := range Strategies() {
		t.Run(name, func(t *testing.T) {
			f, err := NewFactory(name, StrategyParams{K: 32, S: 4})
			if err != nil {
				t.Fatal(err)
			}
			s, err := f.New(16, rng.New(7))
			if err != nil {
				t.Fatal(err)
			}
			if s.StrategyName() != name {
				t.Fatalf("StrategyName() = %q, want %q", s.StrategyName(), name)
			}
			if s.MemoryCap() != 16 {
				t.Fatalf("MemoryCap() = %d, want 16", s.MemoryCap())
			}
			ids := make([]uint64, 0, 512)
			r := rng.New(99)
			for i := 0; i < 512; i++ {
				ids = append(ids, 1+r.Uint64n(64))
			}
			s.ProcessBatch(ids)
			if s.MemorySize() == 0 {
				t.Fatal("memory empty after 512 ids")
			}
			if _, ok := s.Sample(); !ok {
				t.Fatal("Sample() not ready after ingest")
			}
			if got := s.SampleN(8, nil); len(got) != 8 {
				t.Fatalf("SampleN(8) returned %d samples", len(got))
			}
			state, err := s.MarshalState()
			if err != nil {
				t.Fatal(err)
			}
			back, err := f.Restore(16, state, rng.New(8))
			if err != nil {
				t.Fatal(err)
			}
			if err := back.RestoreMemory(s.Memory()); err != nil {
				t.Fatal(err)
			}
			for id := uint64(1); id <= 64; id++ {
				if got, want := back.Estimate(id), s.Estimate(id); got != want {
					t.Fatalf("restored Estimate(%d) = %d, want %d", id, got, want)
				}
			}
			if !s.SharesFamily(back) {
				t.Fatal("restored sampler must share the original's family")
			}
			clone, err := s.CloneEmpty(rng.New(9))
			if err != nil {
				t.Fatal(err)
			}
			if clone.MemorySize() != 0 {
				t.Fatalf("CloneEmpty memory size = %d, want 0", clone.MemorySize())
			}
			if !s.SharesFamily(clone) {
				t.Fatal("clone must share the original's family")
			}
			if err := clone.MergeState(s); err != nil {
				t.Fatalf("MergeState into clone: %v", err)
			}
			s.Decay() // the decay hook must at least not explode
		})
	}
}

func TestStrategyCrossMergeRefused(t *testing.T) {
	kf, err := NewKnowledgeFree(8, 16, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := NewBasalt(8, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := kf.MergeState(ba); err == nil {
		t.Fatal("merging basalt state into knowledge-free must fail")
	}
	if err := ba.MergeState(kf); err == nil {
		t.Fatal("merging knowledge-free state into basalt must fail")
	}
	if kf.SharesFamily(ba) || ba.SharesFamily(kf) {
		t.Fatal("cross-strategy samplers must not report a shared family")
	}
}

func TestStrategyLegacySketchFactory(t *testing.T) {
	f := LegacySketchFactory(func(r *rng.Xoshiro) (*cms.Sketch, error) {
		return cms.NewWithDimensions(16, 2, r)
	})
	if f.Name != DefaultStrategy {
		t.Fatalf("legacy factory name = %q, want %q", f.Name, DefaultStrategy)
	}
	s, err := f.New(4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s.ProcessBatch([]uint64{1, 2, 3, 4, 5})
	state, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Restore(4, state, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Estimate(3), s.Estimate(3); got != want {
		t.Fatalf("legacy restore Estimate(3) = %d, want %d", got, want)
	}
}
