package core

import (
	"math"
	"testing"
	"testing/quick"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

// zipfStream builds a strongly biased categorical stream, the adversarial
// workload of the paper's Figures 7a/8/9/10a.
func zipfStream(t testing.TB, n int, alpha float64, seed uint64) *stream.Categorical {
	t.Helper()
	c, err := stream.NewCategorical(stream.ZipfPMF(n, alpha), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConstructorValidation(t *testing.T) {
	r := rng.New(1)
	oracle, err := NewCountOracle(map[uint64]uint64{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOmniscient(0, oracle, r); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewOmniscient(5, nil, r); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := NewOmniscient(5, oracle, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewKnowledgeFree(0, 10, 5, r); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewKnowledgeFree(5, 0, 5, r); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewKnowledgeFree(5, 10, 0, r); err == nil {
		t.Error("s=0 should fail")
	}
	if _, err := NewKnowledgeFree(5, 10, 5, nil); err == nil {
		t.Error("nil rng should fail")
	}
	if _, err := NewKnowledgeFree(5, 10, 5, r, WithEviction(nil)); err == nil {
		t.Error("nil eviction policy should fail")
	}
	if _, err := NewKnowledgeFreeFromAccuracy(0, 0.1, 0.1, r); err == nil {
		t.Error("c=0 should fail (accuracy ctor)")
	}
	if _, err := NewKnowledgeFreeFromAccuracy(5, 0, 0.1, r); err == nil {
		t.Error("bad epsilon should fail")
	}
	if _, err := NewFullSpace(nil); err == nil {
		t.Error("nil rng should fail (full space)")
	}
	if _, err := NewMinWiseSampler(nil); err == nil {
		t.Error("nil rng should fail (min-wise)")
	}
}

func TestNewKnowledgeFreeFromAccuracyShape(t *testing.T) {
	kf, err := NewKnowledgeFreeFromAccuracy(5, 0.3, 0.01, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if kf.Sketch().Cols() != 10 || kf.Sketch().Rows() != 7 {
		t.Fatalf("sketch shape (k=%d, s=%d), want (10, 7)", kf.Sketch().Cols(), kf.Sketch().Rows())
	}
}

func TestSampleBeforeAnyInput(t *testing.T) {
	r := rng.New(3)
	oracle, _ := NewCountOracle(map[uint64]uint64{1: 1})
	om, err := NewOmniscient(3, oracle, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := om.Sample(); ok {
		t.Error("omniscient Sample ok before input")
	}
	kf, err := NewKnowledgeFree(3, 10, 5, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kf.Sample(); ok {
		t.Error("knowledge-free Sample ok before input")
	}
	fs, err := NewFullSpace(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Sample(); ok {
		t.Error("full-space Sample ok before input")
	}
	mw, err := NewMinWiseSampler(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mw.Sample(); ok {
		t.Error("min-wise Sample ok before input")
	}
	if mw.Memory() != nil {
		t.Error("min-wise Memory non-nil before input")
	}
}

func TestFillPhaseKeepsDistinctIDs(t *testing.T) {
	kf, err := NewKnowledgeFree(4, 16, 3, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint64{10, 20, 10, 30, 20, 40} {
		kf.Process(id)
	}
	mem := kf.Memory()
	if len(mem) != 4 {
		t.Fatalf("memory size %d, want 4", len(mem))
	}
	seen := map[uint64]bool{}
	for _, id := range mem {
		if seen[id] {
			t.Fatalf("memory holds duplicate id %d: %v", id, mem)
		}
		seen[id] = true
	}
	for _, want := range []uint64{10, 20, 30, 40} {
		if !seen[want] {
			t.Fatalf("memory missing %d: %v", want, mem)
		}
	}
	st := kf.Stats()
	if st.Processed != 6 || st.Admitted != 4 || st.Duplicates != 2 || st.Evicted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMemoryInvariants is the property test on Γ: after any sequence of
// arrivals the memory holds at most c pairwise-distinct ids, and every
// emitted output is a member of the memory at emission time.
func TestMemoryInvariants(t *testing.T) {
	f := func(seed uint64, capRaw uint8, opsRaw uint16) bool {
		c := int(capRaw%20) + 1
		ops := int(opsRaw%3000) + 1
		kf, err := NewKnowledgeFree(c, 8, 3, rng.New(seed))
		if err != nil {
			return false
		}
		in := rng.New(seed ^ 0x55aa)
		for i := 0; i < ops; i++ {
			id := in.Uint64n(40)
			out := kf.Process(id)
			mem := kf.Memory()
			if len(mem) > c {
				return false
			}
			distinct := map[uint64]bool{}
			found := false
			for _, v := range mem {
				if distinct[v] {
					return false
				}
				distinct[v] = true
				if v == out {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng.NewRand(77)}); err != nil {
		t.Fatal(err)
	}
}

// TestOmniscientUnbiasesZipf is the core claim of Theorem 4 / Corollary 5,
// measured the way the paper's Figure 8 does: the omniscient output of a
// heavily biased stream has near-zero KL divergence to uniform.
func TestOmniscientUnbiasesZipf(t *testing.T) {
	const n, m, c = 50, 400000, 10
	src := zipfStream(t, n, 2, 10)
	om, err := NewOmniscient(c, src, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	output := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		output.Add(om.Process(id))
	}
	gain, err := metrics.Gain(input, output, n)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0.95 {
		t.Fatalf("omniscient gain %v, want > 0.95", gain)
	}
	// Every id of the population must appear in the output (freshness
	// precondition) and no id may dominate.
	if output.Distinct() != n {
		t.Fatalf("output misses ids: %d of %d", output.Distinct(), n)
	}
	_, maxC := output.Max()
	if ratio := float64(maxC) / (float64(m) / n); ratio > 1.6 {
		t.Fatalf("most frequent output id is %vx uniform share", ratio)
	}
}

// TestOmniscientFreshness: after an arbitrary prefix, every id keeps
// reappearing in the output stream (Property 2).
func TestOmniscientFreshness(t *testing.T) {
	const n, m, c = 20, 200000, 5
	src := zipfStream(t, n, 3, 12)
	om, err := NewOmniscient(c, src, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	lastSeen := make(map[uint64]int, n)
	for i := 0; i < m; i++ {
		out := om.Process(src.Next())
		lastSeen[out] = i
	}
	for id := uint64(0); id < n; id++ {
		last, ok := lastSeen[id]
		if !ok {
			t.Fatalf("id %d never appeared in the output", id)
		}
		if last < m/2 {
			t.Fatalf("id %d last appeared at step %d of %d: output stream is static for it", id, last, m)
		}
	}
}

// TestKnowledgeFreeReducesPeakAttack mirrors Figure 7a: under the 50000/50
// peak attack the knowledge-free strategy must crush the peak's output
// frequency by an order of magnitude.
func TestKnowledgeFreeReducesPeakAttack(t *testing.T) {
	const n, m, c, k, s = 1000, 100000, 10, 10, 5
	pmf, err := stream.PeakPMF(n, 0, 50000, 50)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewCategorical(pmf, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	kf, err := NewKnowledgeFree(c, k, s, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	output := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		output.Add(kf.Process(id))
	}
	inPeak := float64(input.Count(0))
	outPeak := float64(output.Count(0))
	if outPeak > inPeak/10 {
		t.Fatalf("peak frequency only reduced from %v to %v, want ≥ 10x", inPeak, outPeak)
	}
	gain, err := metrics.Gain(input, output, n)
	if err != nil {
		t.Fatal(err)
	}
	if gain < 0.5 {
		t.Fatalf("knowledge-free gain %v under peak attack, want > 0.5", gain)
	}
}

// TestOmniscientBeatsKnowledgeFree: on the same attack the omniscient
// strategy achieves at least the knowledge-free gain (Figures 7–10 all show
// this ordering).
func TestOmniscientBeatsKnowledgeFree(t *testing.T) {
	const n, m, c = 200, 150000, 10
	src := zipfStream(t, n, 4, 16)
	om, err := NewOmniscient(c, src, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	kf, err := NewKnowledgeFree(c, 10, 5, rng.New(18))
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	outOm := metrics.NewHistogram()
	outKf := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		outOm.Add(om.Process(id))
		outKf.Add(kf.Process(id))
	}
	gOm, err := metrics.Gain(input, outOm, n)
	if err != nil {
		t.Fatal(err)
	}
	gKf, err := metrics.Gain(input, outKf, n)
	if err != nil {
		t.Fatal(err)
	}
	if gOm < gKf-0.02 { // tiny statistical slack
		t.Fatalf("omniscient gain %v below knowledge-free gain %v", gOm, gKf)
	}
	if gKf <= 0 {
		t.Fatalf("knowledge-free gain %v not positive", gKf)
	}
}

func TestOmniscientAdmissionProb(t *testing.T) {
	oracle, err := NewCountOracle(map[uint64]uint64{1: 1, 2: 99})
	if err != nil {
		t.Fatal(err)
	}
	om, err := NewOmniscient(1, oracle, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if got := om.admissionProb(1); got != 1 {
		t.Errorf("a_rarest = %v, want 1 (clamped)", got)
	}
	if got, want := om.admissionProb(2), 0.01/0.99; math.Abs(got-want) > 1e-12 {
		t.Errorf("a_frequent = %v, want %v", got, want)
	}
	if got := om.admissionProb(777); got != 1 {
		t.Errorf("a_unknown = %v, want 1 (maximally rare)", got)
	}
}

func TestCountOracle(t *testing.T) {
	if _, err := NewCountOracle(nil); err == nil {
		t.Error("empty counts should fail")
	}
	if _, err := NewCountOracle(map[uint64]uint64{3: 0}); err == nil {
		t.Error("all-zero counts should fail")
	}
	o, err := NewCountOracle(map[uint64]uint64{1: 3, 2: 1, 5: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p := o.Prob(1); math.Abs(p-0.75) > 1e-15 {
		t.Errorf("Prob(1) = %v", p)
	}
	if p := o.Prob(5); p != 0 {
		t.Errorf("Prob(zero-count id) = %v", p)
	}
	if p := o.Prob(42); p != 0 {
		t.Errorf("Prob(unknown) = %v", p)
	}
	if mp := o.MinProb(); math.Abs(mp-0.25) > 1e-15 {
		t.Errorf("MinProb = %v", mp)
	}
}

func TestCountOracleFromStream(t *testing.T) {
	if _, err := NewCountOracleFromStream(nil); err == nil {
		t.Error("empty stream should fail")
	}
	o, err := NewCountOracleFromStream([]uint64{7, 7, 8, 9})
	if err != nil {
		t.Fatal(err)
	}
	if p := o.Prob(7); math.Abs(p-0.5) > 1e-15 {
		t.Errorf("Prob(7) = %v", p)
	}
	if mp := o.MinProb(); math.Abs(mp-0.25) > 1e-15 {
		t.Errorf("MinProb = %v", mp)
	}
}

func TestFullSpaceBaseline(t *testing.T) {
	fs, err := NewFullSpace(rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		fs.Process(uint64(i % 10))
	}
	if len(fs.Memory()) != 10 {
		t.Fatalf("full-space memory %d, want 10 distinct", len(fs.Memory()))
	}
	h := metrics.NewHistogram()
	for i := 0; i < 100000; i++ {
		id, ok := fs.Sample()
		if !ok {
			t.Fatal("sample not ok")
		}
		h.Add(id)
	}
	chi, err := h.ChiSquareUniform(10)
	if err != nil {
		t.Fatal(err)
	}
	if chi > 40 { // df=9, 99.99th percentile ≈ 33.7
		t.Fatalf("full-space samples not uniform: chi2 = %v", chi)
	}
}

// TestMinWiseStaticity demonstrates the defect of the Bortnikov et al.
// baseline that motivates the paper: after convergence the sample never
// changes, violating Freshness.
func TestMinWiseStaticity(t *testing.T) {
	const n, m = 100, 50000
	src := zipfStream(t, n, 1, 21)
	mw, err := NewMinWiseSampler(rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: let the sampler see every id at least once.
	for i := 0; i < m; i++ {
		mw.Process(src.Next())
	}
	converged, ok := mw.Sample()
	if !ok {
		t.Fatal("no sample after warm-up")
	}
	changesAfterWarmup := mw.Changes()
	for i := 0; i < m; i++ {
		out := mw.Process(src.Next())
		if out != converged {
			t.Fatalf("min-wise sample changed after convergence: %d -> %d", converged, out)
		}
	}
	if mw.Changes() != changesAfterWarmup {
		t.Fatalf("min-wise changes grew after convergence: %d -> %d", changesAfterWarmup, mw.Changes())
	}
	if len(mw.Memory()) != 1 || mw.Memory()[0] != converged {
		t.Fatalf("min-wise memory = %v", mw.Memory())
	}
}

// TestKnowledgeFreeStallsWhenSketchWiderThanPopulation documents a known
// boundary of Algorithm 3: if every row has more columns than there are
// distinct ids, some counter stays zero forever, minσ stays 0, and no id is
// ever admitted after the fill phase.
func TestKnowledgeFreeStallsWhenSketchWiderThanPopulation(t *testing.T) {
	const n, c = 4, 2 // 4 distinct ids, 64-column sketch
	kf, err := NewKnowledgeFree(c, 64, 4, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	in := rng.New(24)
	for i := 0; i < 20000; i++ {
		kf.Process(in.Uint64n(n))
	}
	st := kf.Stats()
	if st.Admitted != c {
		t.Fatalf("admitted %d ids, want exactly the %d fill admissions (minσ = 0 regime)", st.Admitted, c)
	}
	if kf.Sketch().GlobalMin() != 0 {
		t.Fatalf("GlobalMin = %d, want 0 with %d ids over %d columns", kf.Sketch().GlobalMin(), n, 64)
	}
}

func TestWeightedEvictionPickDistribution(t *testing.T) {
	mem := []uint64{1, 2, 3}
	w := WeightedEviction{Weight: func(id uint64) float64 { return float64(id) }}
	r := rng.New(25)
	const trials = 60000
	counts := make(map[int]int)
	for i := 0; i < trials; i++ {
		counts[w.Pick(mem, r)]++
	}
	for i, want := range []float64{1.0 / 6, 2.0 / 6, 3.0 / 6} {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d picked %v, want %v", i, got, want)
		}
	}
}

func TestWeightedEvictionDegenerateWeights(t *testing.T) {
	mem := []uint64{1, 2}
	w := WeightedEviction{Weight: func(uint64) float64 { return 0 }}
	r := rng.New(26)
	for i := 0; i < 100; i++ {
		if got := w.Pick(mem, r); got < 0 || got > 1 {
			t.Fatalf("degenerate pick %d out of range", got)
		}
	}
	neg := WeightedEviction{Weight: func(id uint64) float64 { return -1 }}
	for i := 0; i < 100; i++ {
		if got := neg.Pick(mem, r); got < 0 || got > 1 {
			t.Fatalf("negative-weight pick %d out of range", got)
		}
	}
}

// TestBiasedEvictionBreaksUniformity is the ablation behind Theorem 4: with
// non-constant removal probabilities r_j the stationary occupancy is no
// longer uniform, so the output degrades compared to uniform eviction.
func TestBiasedEvictionBreaksUniformity(t *testing.T) {
	const n, m, c = 30, 300000, 6
	src := zipfStream(t, n, 2, 27)
	// Pathological policy: always prefer evicting low ids (the rare ones
	// under Zipf are the high ids, so this protects frequent ids — wrong).
	biased := WeightedEviction{Weight: func(id uint64) float64 { return float64(n - id) }}
	omBiased, err := NewOmniscient(c, src, rng.New(28), WithEviction(biased))
	if err != nil {
		t.Fatal(err)
	}
	omUniform, err := NewOmniscient(c, src, rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	outB := metrics.NewHistogram()
	outU := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		outB.Add(omBiased.Process(id))
		outU.Add(omUniform.Process(id))
	}
	gB, err := metrics.Gain(input, outB, n)
	if err != nil {
		t.Fatal(err)
	}
	gU, err := metrics.Gain(input, outU, n)
	if err != nil {
		t.Fatal(err)
	}
	if gU <= gB {
		t.Fatalf("uniform eviction gain %v not above biased eviction gain %v", gU, gB)
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	mk := func() ([]uint64, error) {
		kf, err := NewKnowledgeFree(5, 10, 5, rng.New(30))
		if err != nil {
			return nil, err
		}
		in := rng.New(31)
		out := make([]uint64, 2000)
		for i := range out {
			out[i] = kf.Process(in.Uint64n(100))
		}
		return out, nil
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed samplers diverged at %d", i)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	const c = 8
	kf, err := NewKnowledgeFree(c, 10, 5, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	in := rng.New(33)
	const m = 50000
	for i := 0; i < m; i++ {
		kf.Process(in.Uint64n(200))
	}
	st := kf.Stats()
	if st.Processed != m {
		t.Errorf("Processed = %d, want %d", st.Processed, m)
	}
	if st.Admitted != st.Evicted+c {
		t.Errorf("Admitted (%d) != Evicted (%d) + c (%d)", st.Admitted, st.Evicted, c)
	}
	if st.Admitted < c {
		t.Errorf("Admitted = %d below capacity %d", st.Admitted, c)
	}
}

func BenchmarkOmniscientProcess(b *testing.B) {
	src := zipfStream(b, 1000, 4, 1)
	om, err := NewOmniscient(10, src, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	ids := stream.Collect(src, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		om.Process(ids[i&8191])
	}
}

func BenchmarkKnowledgeFreeProcess(b *testing.B) {
	src := zipfStream(b, 1000, 4, 1)
	kf, err := NewKnowledgeFree(10, 10, 5, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	ids := stream.Collect(src, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kf.Process(ids[i&8191])
	}
}

func BenchmarkKnowledgeFreeProcessLargeSketch(b *testing.B) {
	src := zipfStream(b, 100000, 1.2, 1)
	kf, err := NewKnowledgeFree(50, 250, 17, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	ids := stream.Collect(src, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kf.Process(ids[i&8191])
	}
}
