// Package core implements the paper's contribution: the uniform node
// sampling service tolerant to collusions of malicious nodes.
//
// A sampler is a one-pass, online component local to a correct node. It
// reads the node's input stream σ of node identifiers — which an adversary
// may bias arbitrarily — and produces an output stream σ′ intended to
// satisfy two properties (Section IV):
//
//	Uniformity: ∀t, ∀j ∈ N, P{S(t) = j} = 1/n
//	Freshness:  ∀t, ∀j ∈ N, {t′ > t : S(t′) = j} ≠ ∅ with probability 1
//
// Two strategies are provided, faithful to Algorithms 1 and 3:
//
//   - Omniscient: knows each id's true occurrence probability p_j (through
//     an Oracle) and admits an arriving id into the sampling memory Γ with
//     probability a_j = min_i(p_i)/p_j, evicting a uniform victim.
//   - KnowledgeFree: estimates frequencies with a Count-Min sketch and
//     admits with probability a_j = minσ/f̂_j, where minσ is the smallest
//     counter of the whole sketch.
//
// Two baselines are included for comparison: FullSpace (the impracticable
// exact strategy that remembers every id) and MinWiseSampler (the
// min-wise-permutation sampler of Bortnikov et al. [6], which converges to
// a uniform choice but then never changes — violating Freshness).
package core

import (
	"errors"
	"fmt"

	"nodesampling/internal/cms"
	"nodesampling/internal/hashing"
	"nodesampling/internal/rng"
)

// Sampler is the node sampling service interface shared by the strategies
// and baselines. Implementations are single-goroutine components; wrap them
// (see the root package's Service) for concurrent use.
type Sampler interface {
	// Process reads one id from the input stream and returns the id written
	// to the output stream for this step.
	Process(id uint64) uint64
	// Sample returns the service's current sample S(t) without consuming
	// input. ok is false before any id has been processed.
	Sample() (id uint64, ok bool)
	// Memory returns a copy of the sampler's current memory Γ.
	Memory() []uint64
}

// Stats counts the sampler's internal activity; useful for experiments and
// ablations.
type Stats struct {
	Processed  uint64 // ids read from the input stream
	Admitted   uint64 // ids inserted into Γ (fill or replacement)
	Evicted    uint64 // ids removed from Γ
	Duplicates uint64 // arrivals already present in Γ (no-ops, the chain's self-loops)
}

// EvictionPolicy selects the element of Γ to evict when a new id is
// admitted into a full memory. The paper's analysis (Theorem 4) requires
// the removal probabilities r_j to be identical — UniformEviction — to make
// the stationary distribution uniform; alternative policies are provided
// for the ablation study.
type EvictionPolicy interface {
	// Pick returns the index in mem of the victim. mem is non-empty.
	Pick(mem []uint64, r *rng.Xoshiro) int
}

// UniformEviction picks the victim uniformly: r_k/Σr_ℓ = 1/|Γ| for the
// constant family r_j = 1/n of Corollary 5.
type UniformEviction struct{}

var _ EvictionPolicy = UniformEviction{}

// Pick implements EvictionPolicy.
func (UniformEviction) Pick(mem []uint64, r *rng.Xoshiro) int {
	return r.Intn(len(mem))
}

// WeightedEviction picks the victim with probability proportional to
// Weight(id), i.e. a non-constant family (r_j). Used by the ablation
// benches to demonstrate that Theorem 4's uniformity breaks when r_j is not
// constant.
type WeightedEviction struct {
	Weight func(id uint64) float64
}

var _ EvictionPolicy = WeightedEviction{}

// Pick implements EvictionPolicy. Non-positive total weight falls back to
// uniform choice.
func (w WeightedEviction) Pick(mem []uint64, r *rng.Xoshiro) int {
	total := 0.0
	for _, id := range mem {
		if v := w.Weight(id); v > 0 {
			total += v
		}
	}
	if total <= 0 {
		return r.Intn(len(mem))
	}
	x := r.Float64() * total
	for i, id := range mem {
		if v := w.Weight(id); v > 0 {
			x -= v
			if x < 0 {
				return i
			}
		}
	}
	return len(mem) - 1
}

// gammaScanThreshold is the memory capacity above which Γ maintains a
// hash index for membership tests. Below it a linear scan over the
// contiguous items slice is faster than any map operation (the whole
// memory fits in a couple of cache lines at the paper's operating points,
// c ∈ [10, 50]), and replacement needs no index maintenance at all.
const gammaScanThreshold = 128

// gamma is the sampling memory Γ: a set of at most c distinct ids with
// cheap membership, insertion, replacement and uniform choice.
type gamma struct {
	items []uint64
	index map[uint64]int // nil below gammaScanThreshold: scanning wins
	cap   int
}

func newGamma(c int) gamma {
	g := gamma{
		items: make([]uint64, 0, c),
		cap:   c,
	}
	if c > gammaScanThreshold {
		g.index = make(map[uint64]int, c)
	}
	return g
}

func (g *gamma) contains(id uint64) bool {
	if g.index != nil {
		_, ok := g.index[id]
		return ok
	}
	for _, v := range g.items {
		if v == id {
			return true
		}
	}
	return false
}

func (g *gamma) full() bool { return len(g.items) == g.cap }
func (g *gamma) size() int  { return len(g.items) }

// add appends id to a non-full memory.
func (g *gamma) add(id uint64) {
	if g.index != nil {
		g.index[id] = len(g.items)
	}
	g.items = append(g.items, id)
}

// replace evicts the element at index i and installs id in its place.
func (g *gamma) replace(i int, id uint64) (evicted uint64) {
	evicted = g.items[i]
	if g.index != nil {
		delete(g.index, evicted)
		g.index[id] = i
	}
	g.items[i] = id
	return evicted
}

// snapshot returns a copy of the memory contents.
func (g *gamma) snapshot() []uint64 {
	out := make([]uint64, len(g.items))
	copy(out, g.items)
	return out
}

// config carries the options shared by the two strategies.
type config struct {
	eviction     EvictionPolicy
	conservative bool
	halveEvery   uint64
}

// Option customises a sampler at construction time.
type Option func(*config) error

// WithEviction overrides the eviction policy (default UniformEviction).
func WithEviction(p EvictionPolicy) Option {
	return func(c *config) error {
		if p == nil {
			return errors.New("core: nil eviction policy")
		}
		c.eviction = p
		return nil
	}
}

// WithPeriodicHalving makes the knowledge-free strategy halve all sketch
// counters every `every` processed ids, exponentially decaying the weight
// of old stream elements. The paper's model assumes churn stops at time T0;
// periodic halving is the natural relaxation that lets the sampler follow a
// population that keeps changing slowly: departed ids wash out of the
// frequency estimates instead of suppressing newcomers forever. The option
// has no effect on the omniscient strategy.
func WithPeriodicHalving(every uint64) Option {
	return func(c *config) error {
		if every == 0 {
			return errors.New("core: halving period must be positive")
		}
		c.halveEvery = every
		return nil
	}
}

// WithConservativeUpdate makes the knowledge-free strategy feed its sketch
// with the conservative-update rule (CM-CU) instead of the plain Count-Min
// increments of Algorithm 2. Estimates remain upper bounds but carry far
// less collision over-count, which markedly improves the strategy's
// discrimination when the sketch width k is small relative to the
// population (the paper's Figure 7b operating point). The option has no
// effect on the omniscient strategy.
func WithConservativeUpdate() Option {
	return func(c *config) error {
		c.conservative = true
		return nil
	}
}

func buildConfig(opts []Option) (config, error) {
	cfg := config{eviction: UniformEviction{}}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// Oracle supplies the omniscient strategy with the knowledge Algorithm 1
// assumes: the true occurrence probability of every id in the input stream
// and the minimum probability over the population.
// stream.Categorical satisfies this interface, as does CountOracle for
// recorded traces.
type Oracle interface {
	// Prob returns p_j, the occurrence probability of id j in the stream.
	Prob(id uint64) float64
	// MinProb returns min over the population of the non-zero p_i.
	MinProb() float64
}

// Omniscient implements Algorithm 1. It requires an Oracle for the stream's
// true occurrence probabilities; with the families a_j = min(p_i)/p_j and
// r_j = 1/n the output stream is provably uniform and fresh (Corollary 5).
type Omniscient struct {
	mem    gamma
	oracle Oracle
	r      *rng.Xoshiro
	evict  EvictionPolicy
	stats  Stats
}

var _ Sampler = (*Omniscient)(nil)

// NewOmniscient creates an omniscient sampler with memory capacity c.
func NewOmniscient(c int, oracle Oracle, r *rng.Xoshiro, opts ...Option) (*Omniscient, error) {
	if c < 1 {
		return nil, fmt.Errorf("core: memory size c must be at least 1, got %d", c)
	}
	if oracle == nil {
		return nil, errors.New("core: nil oracle")
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return &Omniscient{
		mem:    newGamma(c),
		oracle: oracle,
		r:      r,
		evict:  cfg.eviction,
	}, nil
}

// Process implements one step of Algorithm 1.
func (o *Omniscient) Process(id uint64) uint64 {
	o.stats.Processed++
	switch {
	case o.mem.contains(id):
		// Γ is a set: a present id leaves the state unchanged (the Markov
		// chain's self-loop).
		o.stats.Duplicates++
	case !o.mem.full():
		o.mem.add(id)
		o.stats.Admitted++
	default:
		aj := o.admissionProb(id)
		if o.r.Bernoulli(aj) {
			victim := o.evict.Pick(o.mem.items, o.r)
			o.mem.replace(victim, id)
			o.stats.Admitted++
			o.stats.Evicted++
		}
	}
	out, _ := o.Sample()
	return out
}

// admissionProb returns a_j = min_i(p_i)/p_j, clamped to [0, 1]. An id the
// oracle has never seen (p_j = 0) is treated as maximally rare (a_j = 1):
// rarer than the rarest known id, it must be admitted.
func (o *Omniscient) admissionProb(id uint64) float64 {
	pj := o.oracle.Prob(id)
	if pj <= 0 {
		return 1
	}
	aj := o.oracle.MinProb() / pj
	if aj > 1 {
		aj = 1
	}
	return aj
}

// Sample returns a uniformly chosen element of Γ.
func (o *Omniscient) Sample() (uint64, bool) {
	if o.mem.size() == 0 {
		return 0, false
	}
	return o.mem.items[o.r.Intn(o.mem.size())], true
}

// Memory returns a copy of Γ.
func (o *Omniscient) Memory() []uint64 { return o.mem.snapshot() }

// Stats returns the sampler's activity counters.
func (o *Omniscient) Stats() Stats { return o.stats }

// KnowledgeFree implements Algorithm 3: the omniscient structure with the
// oracle replaced by a Count-Min sketch built on the fly over the same
// stream. The admission probability is a_j = minσ/f̂_j with minσ the global
// minimum counter of the sketch and f̂_j the estimate for the arriving id.
type KnowledgeFree struct {
	mem          gamma
	sketch       *cms.Sketch
	r            *rng.Xoshiro
	evict        EvictionPolicy
	conservative bool
	halveEvery   uint64
	stats        Stats
}

var _ Sampler = (*KnowledgeFree)(nil)

// NewKnowledgeFree creates a knowledge-free sampler with memory capacity c
// and a k-column, s-row Count-Min sketch (the paper's notation).
func NewKnowledgeFree(c, k, s int, r *rng.Xoshiro, opts ...Option) (*KnowledgeFree, error) {
	if c < 1 {
		return nil, fmt.Errorf("core: memory size c must be at least 1, got %d", c)
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	sketch, err := cms.NewWithDimensions(k, s, r)
	if err != nil {
		return nil, err
	}
	return &KnowledgeFree{
		mem:          newGamma(c),
		sketch:       sketch,
		r:            r,
		evict:        cfg.eviction,
		conservative: cfg.conservative,
		halveEvery:   cfg.halveEvery,
	}, nil
}

// NewKnowledgeFreeWithSketch creates a knowledge-free sampler around an
// existing sketch, taking ownership of it. The sharded pool uses this to
// give every shard an empty clone of one template sketch (a shared hash
// family makes per-shard sketches mergeable at resize), and to revive
// samplers from snapshots and resize hand-offs with their frequency state
// intact.
func NewKnowledgeFreeWithSketch(c int, sk *cms.Sketch, r *rng.Xoshiro, opts ...Option) (*KnowledgeFree, error) {
	if c < 1 {
		return nil, fmt.Errorf("core: memory size c must be at least 1, got %d", c)
	}
	if sk == nil {
		return nil, errors.New("core: nil sketch")
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	return &KnowledgeFree{
		mem:          newGamma(c),
		sketch:       sk,
		r:            r,
		evict:        cfg.eviction,
		conservative: cfg.conservative,
		halveEvery:   cfg.halveEvery,
	}, nil
}

// NewKnowledgeFreeFromAccuracy creates a knowledge-free sampler whose sketch
// is sized from the (ε, δ) accuracy targets of Algorithm 2: k = ⌈e/ε⌉ and
// s = ⌈log₂(1/δ)⌉.
func NewKnowledgeFreeFromAccuracy(c int, epsilon, delta float64, r *rng.Xoshiro, opts ...Option) (*KnowledgeFree, error) {
	if c < 1 {
		return nil, fmt.Errorf("core: memory size c must be at least 1, got %d", c)
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	sketch, err := cms.New(epsilon, delta, r)
	if err != nil {
		return nil, err
	}
	return &KnowledgeFree{
		mem:          newGamma(c),
		sketch:       sketch,
		r:            r,
		evict:        cfg.eviction,
		conservative: cfg.conservative,
		halveEvery:   cfg.halveEvery,
	}, nil
}

// Process implements one step of Algorithm 3: the sketch and the sampling
// logic both consume the arriving id (the paper's cobegin).
func (kf *KnowledgeFree) Process(id uint64) uint64 {
	kf.processOne(id)
	out, _ := kf.Sample()
	return out
}

// processOne runs the sketch update and admission for one arriving id,
// shared by Process and ProcessBatch. The fused add-and-estimate keeps the
// sketch work to a single hash pass; fj ≥ 1 because the sketch just
// counted id.
func (kf *KnowledgeFree) processOne(id uint64) {
	kf.stats.Processed++
	var fj uint64
	if kf.conservative {
		fj = kf.sketch.AddConservativeEstimate(id)
	} else {
		fj = kf.sketch.AddEstimate(id)
	}
	if kf.halveEvery > 0 && kf.stats.Processed%kf.halveEvery == 0 {
		kf.sketch.Halve()
		// On a halving step the admission probability is computed from the
		// halved counters.
		fj = kf.sketch.Estimate(id)
	}
	kf.admitStep(id, fj)
}

// admitStep is the admission half of Algorithm 3, shared by the single-id
// and batch paths: given the arriving id and its frequency estimate f̂_j,
// admit it into Γ with probability minσ/f̂_j, evicting a victim chosen by
// the eviction policy.
func (kf *KnowledgeFree) admitStep(id, fj uint64) {
	switch {
	case kf.mem.contains(id):
		kf.stats.Duplicates++
	case !kf.mem.full():
		kf.mem.add(id)
		kf.stats.Admitted++
	default:
		minSigma := kf.sketch.GlobalMin()
		aj := float64(minSigma) / float64(fj)
		if kf.r.Bernoulli(aj) {
			victim := kf.evict.Pick(kf.mem.items, kf.r)
			kf.mem.replace(victim, id)
			kf.stats.Admitted++
			kf.stats.Evicted++
		}
	}
}

// ProcessBatch consumes a whole batch of ids with the same admission logic
// as Process, but without drawing a per-id output sample: batch ingestion
// (the sharded pool) serves samples on demand, so the per-step output draw
// of the paper's one-pass loop would be pure waste.
func (kf *KnowledgeFree) ProcessBatch(ids []uint64) {
	for _, id := range ids {
		kf.processOne(id)
	}
}

// ProcessBatchEmit consumes a batch like ProcessBatch but restores the
// per-id output draw of the paper's one-pass loop: after each ingested id
// one uniform element of Γ is appended to out — the output stream σ′ that
// Algorithm 1 writes continuously. It returns the extended slice. Γ is
// non-empty from the first processed id on, so exactly len(ids) draws are
// appended whenever the memory was seeded (always, except for the ids at
// the very front of the sampler's first ever batch before one is admitted —
// and the first id is always admitted, so in practice one draw per id).
func (kf *KnowledgeFree) ProcessBatchEmit(ids []uint64, out []uint64) []uint64 {
	for _, id := range ids {
		kf.processOne(id)
		if s, ok := kf.Sample(); ok {
			out = append(out, s)
		}
	}
	return out
}

// Sample returns a uniformly chosen element of Γ.
func (kf *KnowledgeFree) Sample() (uint64, bool) {
	if kf.mem.size() == 0 {
		return 0, false
	}
	return kf.mem.items[kf.r.Intn(kf.mem.size())], true
}

// Memory returns a copy of Γ.
func (kf *KnowledgeFree) Memory() []uint64 { return kf.mem.snapshot() }

// MemorySize returns the current |Γ| without copying the memory.
func (kf *KnowledgeFree) MemorySize() int { return kf.mem.size() }

// MemoryCap returns c, the capacity of Γ.
func (kf *KnowledgeFree) MemoryCap() int { return kf.mem.cap }

// RestoreMemory replaces Γ with the given ids (duplicates collapse; Γ is a
// set). The resize and snapshot-restore paths use it to hand a repartitioned
// or deserialised memory to a sampler. Fails without modifying the sampler
// if the distinct ids exceed the capacity; callers shedding overflow must
// choose the survivors uniformly to preserve the Uniformity argument.
func (kf *KnowledgeFree) RestoreMemory(ids []uint64) error {
	mem := newGamma(kf.mem.cap)
	for _, id := range ids {
		if mem.contains(id) {
			continue
		}
		if mem.full() {
			return fmt.Errorf("core: restoring %d distinct ids into a memory of capacity %d", len(ids), kf.mem.cap)
		}
		mem.add(id)
	}
	kf.mem = mem
	return nil
}

// Stats returns the sampler's activity counters.
func (kf *KnowledgeFree) Stats() Stats { return kf.stats }

// Sketch exposes the underlying Count-Min sketch (read-only use intended);
// experiments use it to inspect estimation error under attack.
func (kf *KnowledgeFree) Sketch() *cms.Sketch { return kf.sketch }

// CountOracle is an Oracle built from exact id counts — the "omniscient"
// knowledge for a recorded trace, obtained by a preliminary full pass.
type CountOracle struct {
	probs map[uint64]float64
	min   float64
}

var _ Oracle = (*CountOracle)(nil)

// NewCountOracle builds an oracle from a count table.
func NewCountOracle(counts map[uint64]uint64) (*CountOracle, error) {
	if len(counts) == 0 {
		return nil, errors.New("core: empty count table")
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, errors.New("core: all counts are zero")
	}
	probs := make(map[uint64]float64, len(counts))
	min := 2.0
	for id, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		probs[id] = p
		if p < min {
			min = p
		}
	}
	return &CountOracle{probs: probs, min: min}, nil
}

// NewCountOracleFromStream counts a recorded stream and builds the oracle.
func NewCountOracleFromStream(ids []uint64) (*CountOracle, error) {
	if len(ids) == 0 {
		return nil, errors.New("core: empty stream")
	}
	counts := make(map[uint64]uint64)
	for _, id := range ids {
		counts[id]++
	}
	return NewCountOracle(counts)
}

// Prob implements Oracle.
func (o *CountOracle) Prob(id uint64) float64 { return o.probs[id] }

// MinProb implements Oracle.
func (o *CountOracle) MinProb() float64 { return o.min }

// FullSpace is the impracticable exact baseline discussed in the paper's
// introduction: it stores every distinct id ever seen and samples uniformly
// among them. Its memory grows linearly with the population, which is
// precisely what the paper's strategies avoid.
type FullSpace struct {
	ids  []uint64
	seen map[uint64]struct{}
	r    *rng.Xoshiro
}

var _ Sampler = (*FullSpace)(nil)

// NewFullSpace creates the full-memory baseline.
func NewFullSpace(r *rng.Xoshiro) (*FullSpace, error) {
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	return &FullSpace{seen: make(map[uint64]struct{}), r: r}, nil
}

// Process records the id if new and returns a uniform sample of all ids
// seen so far.
func (f *FullSpace) Process(id uint64) uint64 {
	if _, ok := f.seen[id]; !ok {
		f.seen[id] = struct{}{}
		f.ids = append(f.ids, id)
	}
	out, _ := f.Sample()
	return out
}

// Sample returns a uniform element among all distinct ids seen.
func (f *FullSpace) Sample() (uint64, bool) {
	if len(f.ids) == 0 {
		return 0, false
	}
	return f.ids[f.r.Intn(len(f.ids))], true
}

// Memory returns a copy of all distinct ids seen (unbounded).
func (f *FullSpace) Memory() []uint64 {
	out := make([]uint64, len(f.ids))
	copy(out, f.ids)
	return out
}

// MinWiseSampler is the Bortnikov et al. baseline [6]: it keeps the id whose
// image under a randomly drawn min-wise permutation is smallest. Over a
// stream that eventually contains every id, the kept id converges to a
// uniform choice — and then never changes again, violating Freshness. The
// paper's introduction and related-work sections argue against exactly this
// behaviour; the ablation bench quantifies it.
type MinWiseSampler struct {
	perm hashing.MinWise
	cur  uint64
	img  uint64
	has  bool
	// changes counts how many times the sample value changed, exposing the
	// staticity defect: it stops growing once convergence is reached.
	changes uint64
}

var _ Sampler = (*MinWiseSampler)(nil)

// NewMinWiseSampler draws a random min-wise permutation for the sampler.
func NewMinWiseSampler(r *rng.Xoshiro) (*MinWiseSampler, error) {
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	perm, err := hashing.NewMinWise(r)
	if err != nil {
		return nil, err
	}
	return &MinWiseSampler{perm: perm}, nil
}

// Process keeps the minimum-image id and returns the current sample.
func (m *MinWiseSampler) Process(id uint64) uint64 {
	img := m.perm.Image(id)
	if !m.has || img < m.img {
		if m.has && id != m.cur {
			m.changes++
		}
		m.cur, m.img, m.has = id, img, true
	}
	out, _ := m.Sample()
	return out
}

// Sample returns the current minimum-image id.
func (m *MinWiseSampler) Sample() (uint64, bool) { return m.cur, m.has }

// Memory returns the single stored id (or empty before any input).
func (m *MinWiseSampler) Memory() []uint64 {
	if !m.has {
		return nil
	}
	return []uint64{m.cur}
}

// Changes reports how many times the sample value has changed since the
// first arrival; a static sampler stops changing early in the stream.
func (m *MinWiseSampler) Changes() uint64 { return m.changes }
