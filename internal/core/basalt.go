package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"nodesampling/internal/rng"
)

// BasaltSampler is a BASALT-style pseudo-random ranking sampler: each of the
// c memory slots carries a seeded ranking function rank_i(id) = h(seed_i, id)
// and retains the observed id that minimises it, together with a hit counter
// for the resident. Because the seeds are drawn independently of the stream,
// an adversary flooding the stream with its own ids gains no advantage per
// arrival — only the hash values of the ids it controls matter — which makes
// the slot contents a uniform-ish draw over the *distinct* observed ids.
//
// The decay analogue is a slot-seed refresh: each Decay call re-seeds one
// slot round-robin, so over time every slot forgets its frozen minimum and
// re-opens the competition to newly observed ids. Unlike the knowledge-free
// strategy there is no frequency sketch at all, which makes this backend the
// interface's sketch-free stress test.
type BasaltSampler struct {
	slots      []basaltSlot
	familySeed uint64 // shared by all clones; defines the ranking family
	epoch      uint64 // decay steps applied; slot seeds derive from it
	filled     int    // occupied slots
	r          *rng.Xoshiro
	halveEvery uint64 // standalone decay period (pool decay is external)
	processed  uint64
	stats      Stats
}

type basaltSlot struct {
	seed     uint64
	id       uint64
	rank     uint64
	hits     uint64
	occupied bool
}

var _ PoolSampler = (*BasaltSampler)(nil)

// basaltSlotSeed derives slot i's ranking seed after `refreshes` decay
// refreshes, deterministically from the family seed. Determinism here is
// what lets CloneEmpty/MergeState align clones and snapshots reconstruct
// seeds without persisting them.
func basaltSlotSeed(family uint64, slot int, refreshes uint64) uint64 {
	return rng.Mix64(family ^ rng.Mix64(uint64(slot)+1) ^ rng.Mix64(refreshes*0x9e3779b97f4a7c15+0x2545f4914f6cdd1d))
}

// basaltRefreshes returns how many times slot i has been re-seeded after
// `epoch` round-robin decay steps over c slots (step e refreshes slot
// (e-1) mod c).
func basaltRefreshes(epoch uint64, slot, c int) uint64 {
	full := epoch / uint64(c)
	if uint64(slot) < epoch%uint64(c) {
		return full + 1
	}
	return full
}

// NewBasalt builds a BASALT-style sampler with c slots. The ranking family
// seed is drawn from r, so samplers built from independent rngs rank ids
// independently. WithPeriodicHalving sets the standalone decay period (one
// slot-seed refresh every `every` ids); eviction and conservative-update
// options do not apply to this strategy and are ignored.
func NewBasalt(c int, r *rng.Xoshiro, opts ...Option) (*BasaltSampler, error) {
	if c < 1 {
		return nil, fmt.Errorf("core: memory size must be >= 1, got %d", c)
	}
	if r == nil {
		return nil, errors.New("core: rng must not be nil")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	b := &BasaltSampler{
		slots:      make([]basaltSlot, c),
		familySeed: r.Uint64(),
		r:          r,
		halveEvery: cfg.halveEvery,
	}
	b.initSeeds()
	return b, nil
}

// initSeeds recomputes every slot seed (and resident rank) from the family
// seed and the current epoch.
func (b *BasaltSampler) initSeeds() {
	c := len(b.slots)
	for i := range b.slots {
		s := &b.slots[i]
		s.seed = basaltSlotSeed(b.familySeed, i, basaltRefreshes(b.epoch, i, c))
		if s.occupied {
			s.rank = rng.Mix64(s.seed ^ s.id)
		}
	}
}

// Process observes one id and returns the sampler's current output sample
// (uniform over the occupied slots).
func (b *BasaltSampler) Process(id uint64) uint64 {
	b.processOne(id)
	out, _ := b.Sample()
	return out
}

func (b *BasaltSampler) processOne(id uint64) {
	b.stats.Processed++
	b.processed++
	won, resident := false, false
	for i := range b.slots {
		s := &b.slots[i]
		switch {
		case !s.occupied:
			s.id, s.rank, s.hits, s.occupied = id, rng.Mix64(s.seed^id), 1, true
			b.filled++
			won = true
		case s.id == id:
			s.hits++
			resident = true
		default:
			if rk := rng.Mix64(s.seed ^ id); rk < s.rank {
				s.id, s.rank, s.hits = id, rk, 1
				b.stats.Evicted++
				won = true
			}
		}
	}
	if won {
		b.stats.Admitted++
	} else if resident {
		b.stats.Duplicates++
	}
	if b.halveEvery > 0 && b.processed%b.halveEvery == 0 {
		b.Decay()
	}
}

// ProcessBatch consumes ids without collecting the emitted samples.
func (b *BasaltSampler) ProcessBatch(ids []uint64) {
	for _, id := range ids {
		b.processOne(id)
	}
}

// ProcessBatchEmit consumes ids and appends one emitted sample per id.
func (b *BasaltSampler) ProcessBatchEmit(ids []uint64, out []uint64) []uint64 {
	for _, id := range ids {
		b.processOne(id)
		if s, ok := b.Sample(); ok {
			out = append(out, s)
		}
	}
	return out
}

// Sample draws uniformly over the occupied slots. Slots holding the same
// resident are counted with multiplicity, matching BASALT's view sampling.
func (b *BasaltSampler) Sample() (uint64, bool) {
	if b.filled == 0 {
		return 0, false
	}
	if b.filled == len(b.slots) {
		return b.slots[b.r.Intn(len(b.slots))].id, true
	}
	j := b.r.Intn(b.filled)
	for i := range b.slots {
		if !b.slots[i].occupied {
			continue
		}
		if j == 0 {
			return b.slots[i].id, true
		}
		j--
	}
	return 0, false
}

// SampleN appends up to n independent draws to out.
func (b *BasaltSampler) SampleN(n int, out []uint64) []uint64 {
	for i := 0; i < n; i++ {
		id, ok := b.Sample()
		if !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

// Memory returns the distinct resident ids.
func (b *BasaltSampler) Memory() []uint64 {
	seen := make(map[uint64]struct{}, len(b.slots))
	out := make([]uint64, 0, len(b.slots))
	for i := range b.slots {
		s := &b.slots[i]
		if !s.occupied {
			continue
		}
		if _, dup := seen[s.id]; dup {
			continue
		}
		seen[s.id] = struct{}{}
		out = append(out, s.id)
	}
	return out
}

// MemorySize reports the number of occupied slots.
func (b *BasaltSampler) MemorySize() int { return b.filled }

// MemoryCap reports the slot count c.
func (b *BasaltSampler) MemoryCap() int { return len(b.slots) }

// RestoreMemory re-populates the slots from a snapshot's distinct resident
// set: each slot takes the rank-minimal id of the set under its current
// seed. Because every slot's previous resident was rank-minimal over all
// observed ids — a superset relation the snapshot preserves by storing every
// resident — the reconstruction is exact. Hit counters cannot be carried
// through the id list and restart at 1 (the snapshot layer restores them via
// MarshalState instead).
func (b *BasaltSampler) RestoreMemory(ids []uint64) error {
	distinct := make([]uint64, 0, len(ids))
	seen := make(map[uint64]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			continue
		}
		seen[id] = struct{}{}
		distinct = append(distinct, id)
	}
	if len(distinct) > len(b.slots) {
		return fmt.Errorf("core: %d ids exceed memory size %d", len(distinct), len(b.slots))
	}
	prevHits := make(map[uint64]uint64, len(b.slots))
	for i := range b.slots {
		if s := &b.slots[i]; s.occupied && s.hits > prevHits[s.id] {
			prevHits[s.id] = s.hits
		}
	}
	b.filled = 0
	for i := range b.slots {
		s := &b.slots[i]
		s.occupied = false
		s.id, s.rank, s.hits = 0, 0, 0
		for _, id := range distinct {
			rk := rng.Mix64(s.seed ^ id)
			if !s.occupied || rk < s.rank {
				s.id, s.rank, s.occupied = id, rk, true
			}
		}
		if s.occupied {
			b.filled++
			s.hits = 1
			if h, ok := prevHits[s.id]; ok {
				s.hits = h
			}
		}
	}
	return nil
}

// Estimate reports the sampler's frequency knowledge for id: the largest
// hit counter among slots where id is resident, 0 if it is not resident.
func (b *BasaltSampler) Estimate(id uint64) uint64 {
	var best uint64
	for i := range b.slots {
		if s := &b.slots[i]; s.occupied && s.id == id && s.hits > best {
			best = s.hits
		}
	}
	return best
}

// Decay re-seeds one slot round-robin. The resident keeps its place but its
// rank is recomputed under the new seed, so the next arrival with a smaller
// rank takes the slot — the forgetting mechanism that plays the role of the
// knowledge-free strategy's sketch halving.
func (b *BasaltSampler) Decay() {
	c := len(b.slots)
	b.epoch++
	i := int((b.epoch - 1) % uint64(c))
	s := &b.slots[i]
	s.seed = basaltSlotSeed(b.familySeed, i, basaltRefreshes(b.epoch, i, c))
	if s.occupied {
		s.rank = rng.Mix64(s.seed ^ s.id)
	}
}

// Stats returns processing counters.
func (b *BasaltSampler) Stats() Stats { return b.stats }

// CloneEmpty derives an empty sampler in the same ranking family at the same
// decay epoch, driven by r. Clones are state-mergeable with the original.
func (b *BasaltSampler) CloneEmpty(r *rng.Xoshiro) (PoolSampler, error) {
	if r == nil {
		return nil, errors.New("core: rng must not be nil")
	}
	nb := &BasaltSampler{
		slots:      make([]basaltSlot, len(b.slots)),
		familySeed: b.familySeed,
		epoch:      b.epoch,
		r:          r,
		halveEvery: b.halveEvery,
	}
	nb.initSeeds()
	return nb, nil
}

// MergeState folds other's slot residents into this sampler: per slot, the
// rank-minimal resident wins; equal residents sum their hit counters. Both
// samplers must share the ranking family and decay epoch (the pool's resize
// path aligns epochs before merging).
func (b *BasaltSampler) MergeState(other PoolSampler) error {
	o, ok := other.(*BasaltSampler)
	if !ok {
		return fmt.Errorf("core: cannot merge %s state into basalt", other.StrategyName())
	}
	if o.familySeed != b.familySeed {
		return errors.New("core: basalt samplers use different ranking families")
	}
	if len(o.slots) != len(b.slots) {
		return fmt.Errorf("core: basalt slot counts differ (%d vs %d)", len(b.slots), len(o.slots))
	}
	if o.epoch != b.epoch {
		return fmt.Errorf("core: basalt decay epochs differ (%d vs %d)", b.epoch, o.epoch)
	}
	for i := range b.slots {
		s, os := &b.slots[i], &o.slots[i]
		if !os.occupied {
			continue
		}
		switch {
		case !s.occupied:
			*s = *os
			b.filled++
		case s.id == os.id:
			s.hits += os.hits
		case os.rank < s.rank:
			s.id, s.rank, s.hits = os.id, os.rank, os.hits
		}
	}
	return nil
}

// basaltStateVersion versions the MarshalState encoding.
const basaltStateVersion = 1

// MarshalState serialises the ranking family, decay epoch, and slot
// contents. Slot seeds and ranks are not persisted — they re-derive from
// the family seed and epoch.
func (b *BasaltSampler) MarshalState() ([]byte, error) {
	buf := make([]byte, 0, 4+8+8+4+len(b.slots)*17)
	buf = binary.BigEndian.AppendUint32(buf, basaltStateVersion)
	buf = binary.BigEndian.AppendUint64(buf, b.familySeed)
	buf = binary.BigEndian.AppendUint64(buf, b.epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.slots)))
	for i := range b.slots {
		s := &b.slots[i]
		if s.occupied {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.BigEndian.AppendUint64(buf, s.id)
		buf = binary.BigEndian.AppendUint64(buf, s.hits)
	}
	return buf, nil
}

// RestoreBasalt rebuilds a sampler from MarshalState bytes. The slot count
// in the blob must match the configured capacity c.
func RestoreBasalt(c int, state []byte, r *rng.Xoshiro, opts ...Option) (*BasaltSampler, error) {
	if r == nil {
		return nil, errors.New("core: rng must not be nil")
	}
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if len(state) < 4+8+8+4 {
		return nil, errors.New("core: basalt state truncated")
	}
	if v := binary.BigEndian.Uint32(state); v != basaltStateVersion {
		return nil, fmt.Errorf("core: unsupported basalt state version %d", v)
	}
	family := binary.BigEndian.Uint64(state[4:])
	epoch := binary.BigEndian.Uint64(state[12:])
	slots := int(binary.BigEndian.Uint32(state[20:]))
	if slots != c {
		return nil, fmt.Errorf("core: basalt state has %d slots, configured capacity is %d", slots, c)
	}
	if len(state) != 24+slots*17 {
		return nil, fmt.Errorf("core: basalt state length %d does not match %d slots", len(state), slots)
	}
	b := &BasaltSampler{
		slots:      make([]basaltSlot, slots),
		familySeed: family,
		epoch:      epoch,
		r:          r,
		halveEvery: cfg.halveEvery,
	}
	off := 24
	for i := range b.slots {
		s := &b.slots[i]
		switch state[off] {
		case 0:
		case 1:
			s.occupied = true
			b.filled++
		default:
			return nil, fmt.Errorf("core: basalt state slot %d has invalid occupancy byte %d", i, state[off])
		}
		s.id = binary.BigEndian.Uint64(state[off+1:])
		s.hits = binary.BigEndian.Uint64(state[off+9:])
		off += 17
	}
	b.initSeeds()
	return b, nil
}

// StateDesc describes the slot shape for snapshot-mismatch errors.
func (b *BasaltSampler) StateDesc() string { return fmt.Sprintf("basalt %d slots", len(b.slots)) }

// SharesFamily reports whether other is a basalt sampler over the same
// ranking family and slot count.
func (b *BasaltSampler) SharesFamily(other PoolSampler) bool {
	o, ok := other.(*BasaltSampler)
	return ok && o.familySeed == b.familySeed && len(o.slots) == len(b.slots)
}

// StrategyName returns this strategy's registry name.
func (b *BasaltSampler) StrategyName() string { return "basalt" }
