package core

import (
	"errors"
	"fmt"
	"sort"

	"nodesampling/internal/cms"
	"nodesampling/internal/rng"
)

// This file defines the pluggable strategy layer: the PoolSampler contract
// every sampling backend implements, and the registry that names them. The
// shard pool, the public Pool/Service API, snapshots, and the unsd daemon
// build samplers exclusively through SamplerFactory values resolved here, so
// a new backend (Honeybee, LIFT, ...) plugs in by registering one entry and
// inherits sharding, snapshots, telemetry, and the uniformity proofs.

// PoolSampler is the full contract a sampling strategy implements to run
// inside the sharded pool. It extends the minimal Sampler interface with the
// batch hot path, state management for snapshots, the decay hook the pool's
// global decay clock drives, and the cloning/merging operations Resize needs.
//
// The contract mirrors the paper's strategy shape rather than any one
// estimator: Process consumes one id from the input stream σ and returns the
// sampler's current output σ′; Decay ages the frequency state (a sketch
// halving for the knowledge-free strategy, a slot-seed refresh for BASALT);
// MarshalState must round-trip through the registry's Restore hook so
// snapshots stay strategy-generic.
type PoolSampler interface {
	Sampler

	// ProcessBatch consumes ids without collecting the emitted samples.
	ProcessBatch(ids []uint64)
	// ProcessBatchEmit consumes ids and appends one emitted sample per id
	// to out, returning the extended slice.
	ProcessBatchEmit(ids []uint64, out []uint64) []uint64

	// SampleN appends up to n independent samples to out.
	SampleN(n int, out []uint64) []uint64
	// MemorySize reports how many ids the sampler memory currently holds.
	MemorySize() int
	// MemoryCap reports the configured memory capacity c.
	MemoryCap() int
	// RestoreMemory replaces the sampler memory with the given ids.
	RestoreMemory(ids []uint64) error
	// Estimate reports the sampler's frequency knowledge for one id (a
	// Count-Min estimate, a hit counter, ... — strategy-defined).
	Estimate(id uint64) uint64

	// Decay applies one aging step. The pool's global decay clock calls
	// this once per DecayEvery ids observed pool-wide.
	Decay()

	// CloneEmpty derives a fresh, empty sampler of the same strategy and
	// shape, driven by r. Clones of one sampler are state-mergeable.
	CloneEmpty(r *rng.Xoshiro) (PoolSampler, error)
	// MergeState folds another sampler's frequency state (not its memory)
	// into this one. Both must be the same strategy and family.
	MergeState(other PoolSampler) error
	// MarshalState serialises the frequency state for snapshots; the
	// registry's Restore hook reverses it.
	MarshalState() ([]byte, error)
	// StateDesc is a human-readable shape description ("count-min 64x4",
	// "basalt 50 slots") used in snapshot-mismatch errors.
	StateDesc() string
	// SharesFamily reports whether other uses the same hash/seed family,
	// i.e. whether MergeState between the two is meaningful.
	SharesFamily(other PoolSampler) bool
	// StrategyName returns the registry name this sampler was built under.
	StrategyName() string
}

// StrategyParams carries the knobs a strategy may consult when building a
// sampler. Sketch-free strategies ignore the sketch shape.
type StrategyParams struct {
	K, S        int     // Count-Min shape: k columns, s rows (0,0 = default 50x10)
	UseAccuracy bool    // derive the sketch shape from (Epsilon, Delta) instead
	Epsilon     float64 // relative accuracy when UseAccuracy
	Delta       float64 // failure probability when UseAccuracy
	Options     []Option
}

// SamplerFactory builds and restores samplers of one named strategy. The
// capacity is a per-call argument (not baked in at resolve time) because a
// snapshot restore learns the capacity from the blob, after the factory has
// already been resolved.
type SamplerFactory struct {
	// Name is the registry name ("knowledge-free", "basalt", ...).
	Name string
	// New builds a fresh sampler with memory capacity c, driven by r.
	New func(c int, r *rng.Xoshiro) (PoolSampler, error)
	// Restore rebuilds a sampler from MarshalState bytes.
	Restore func(c int, state []byte, r *rng.Xoshiro) (PoolSampler, error)
}

// DefaultStrategy is the paper's estimator and the name implied by
// pre-strategy (v1) snapshot blobs.
const DefaultStrategy = "knowledge-free"

// strategyDef is one registry entry.
type strategyDef struct {
	build   func(p StrategyParams, c int, r *rng.Xoshiro) (PoolSampler, error)
	restore func(p StrategyParams, c int, state []byte, r *rng.Xoshiro) (PoolSampler, error)
}

var strategyRegistry = map[string]strategyDef{
	DefaultStrategy: {
		build: func(p StrategyParams, c int, r *rng.Xoshiro) (PoolSampler, error) {
			if p.UseAccuracy {
				return NewKnowledgeFreeFromAccuracy(c, p.Epsilon, p.Delta, r, p.Options...)
			}
			k, s := p.K, p.S
			if k == 0 && s == 0 {
				k, s = 50, 10
			}
			return NewKnowledgeFree(c, k, s, r, p.Options...)
		},
		restore: func(p StrategyParams, c int, state []byte, r *rng.Xoshiro) (PoolSampler, error) {
			sk := new(cms.Sketch)
			if err := sk.UnmarshalBinary(state); err != nil {
				return nil, err
			}
			return NewKnowledgeFreeWithSketch(c, sk, r, p.Options...)
		},
	},
	"basalt": {
		build: func(p StrategyParams, c int, r *rng.Xoshiro) (PoolSampler, error) {
			return NewBasalt(c, r, p.Options...)
		},
		restore: func(p StrategyParams, c int, state []byte, r *rng.Xoshiro) (PoolSampler, error) {
			return RestoreBasalt(c, state, r, p.Options...)
		},
	},
}

// Strategies lists the registered strategy names, sorted.
func Strategies() []string {
	names := make([]string, 0, len(strategyRegistry))
	for name := range strategyRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewFactory resolves name ("" means DefaultStrategy) against the registry
// and binds the params, returning a factory the pool can call per shard.
func NewFactory(name string, p StrategyParams) (SamplerFactory, error) {
	if name == "" {
		name = DefaultStrategy
	}
	def, ok := strategyRegistry[name]
	if !ok {
		return SamplerFactory{}, fmt.Errorf("core: unknown sampler strategy %q (registered: %v)", name, Strategies())
	}
	bound := name
	return SamplerFactory{
		Name: bound,
		New: func(c int, r *rng.Xoshiro) (PoolSampler, error) {
			return def.build(p, c, r)
		},
		Restore: func(c int, state []byte, r *rng.Xoshiro) (PoolSampler, error) {
			return def.restore(p, c, state, r)
		},
	}, nil
}

// RestoreFactory resolves a factory for restoring a snapshot whose config
// named no strategy: the blob governs, and only per-sampler options (decay,
// eviction policy) carry over from the config. Shape parameters are not
// needed — the marshalled state carries its own shape.
func RestoreFactory(name string, opts ...Option) (SamplerFactory, error) {
	return NewFactory(name, StrategyParams{Options: opts})
}

// LegacySketchFactory adapts the pre-strategy shard configuration — a sketch
// constructor hook plus core options — to a default-strategy factory. It
// exists so configs written against the old Config.NewSketch field keep
// working unchanged.
func LegacySketchFactory(newSketch func(r *rng.Xoshiro) (*cms.Sketch, error), opts ...Option) SamplerFactory {
	return SamplerFactory{
		Name: DefaultStrategy,
		New: func(c int, r *rng.Xoshiro) (PoolSampler, error) {
			sk, err := newSketch(r)
			if err != nil {
				return nil, err
			}
			return NewKnowledgeFreeWithSketch(c, sk, r, opts...)
		},
		Restore: func(c int, state []byte, r *rng.Xoshiro) (PoolSampler, error) {
			sk := new(cms.Sketch)
			if err := sk.UnmarshalBinary(state); err != nil {
				return nil, err
			}
			return NewKnowledgeFreeWithSketch(c, sk, r, opts...)
		},
	}
}

// --- KnowledgeFree: PoolSampler surface -----------------------------------

var _ PoolSampler = (*KnowledgeFree)(nil)

// SampleN appends up to n independent uniform draws from Γ to out.
func (kf *KnowledgeFree) SampleN(n int, out []uint64) []uint64 {
	for i := 0; i < n; i++ {
		id, ok := kf.Sample()
		if !ok {
			break
		}
		out = append(out, id)
	}
	return out
}

// Estimate reports the Count-Min frequency estimate for id.
func (kf *KnowledgeFree) Estimate(id uint64) uint64 { return kf.sketch.Estimate(id) }

// Decay halves every sketch counter — the knowledge-free aging step.
func (kf *KnowledgeFree) Decay() { kf.sketch.Halve() }

// CloneEmpty derives a fresh sampler sharing the sketch's hash family, with
// empty counters and empty Γ, driven by r.
func (kf *KnowledgeFree) CloneEmpty(r *rng.Xoshiro) (PoolSampler, error) {
	if r == nil {
		return nil, errors.New("core: rng must not be nil")
	}
	return &KnowledgeFree{
		mem:          newGamma(kf.mem.cap),
		sketch:       kf.sketch.CloneEmpty(),
		r:            r,
		evict:        kf.evict,
		conservative: kf.conservative,
		halveEvery:   kf.halveEvery,
	}, nil
}

// MergeState adds other's sketch counters into this sampler's sketch.
func (kf *KnowledgeFree) MergeState(other PoolSampler) error {
	o, ok := other.(*KnowledgeFree)
	if !ok {
		return fmt.Errorf("core: cannot merge %s state into %s", other.StrategyName(), DefaultStrategy)
	}
	return kf.sketch.Merge(o.sketch)
}

// MarshalState serialises the sketch (the Γ memory is carried separately by
// the snapshot layer). The bytes are exactly the sketch's binary form, which
// keeps v2 snapshot bodies bit-identical to v1 bodies.
func (kf *KnowledgeFree) MarshalState() ([]byte, error) { return kf.sketch.MarshalBinary() }

// StateDesc describes the sketch shape for snapshot-mismatch errors.
func (kf *KnowledgeFree) StateDesc() string {
	return fmt.Sprintf("count-min %dx%d", kf.sketch.Cols(), kf.sketch.Rows())
}

// SharesFamily reports whether other is a knowledge-free sampler over the
// same hash family (same seeds, rows, cols).
func (kf *KnowledgeFree) SharesFamily(other PoolSampler) bool {
	o, ok := other.(*KnowledgeFree)
	return ok && kf.sketch.SharesFamily(o.sketch)
}

// StrategyName returns the registry name of the paper's estimator.
func (kf *KnowledgeFree) StrategyName() string { return DefaultStrategy }
