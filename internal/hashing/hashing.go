// Package hashing implements the 2-universal hash family the paper relies on
// (Section III-D) plus the min-wise hashing used by the Brahms-style
// baseline sampler.
//
// The family is the classic Carter–Wegman construction over the Mersenne
// prime p = 2^61 − 1:
//
//	h_{a,b}(x) = ((a·x + b) mod p) mod k,  a ∈ [1, p−1], b ∈ [0, p−1]
//
// For any two distinct x, y the collision probability over the random choice
// of (a, b) is at most 1/k (up to the negligible p-rounding term), which is
// exactly the 2-universality property Algorithm 2 (Count-Min sketch) and the
// urn analysis of Section V assume.
package hashing

import (
	"errors"
	"fmt"
	"math/bits"

	"nodesampling/internal/rng"
)

// MersennePrime is p = 2^61 − 1, the modulus of the hash family.
const MersennePrime uint64 = (1 << 61) - 1

// mulModMersenne returns (a * b) mod (2^61 − 1) using a 128-bit intermediate
// product and the standard fold reduction for Mersenne primes.
func mulModMersenne(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo. With p = 2^61 − 1 we have 2^61 ≡ 1 (mod p), so we
	// fold the value into 61-bit chunks and sum them.
	// lo = lo61 + 2^61·loHi where loHi has 3 bits; hi contributes hi·2^64 =
	// hi·8·2^61 ≡ 8·hi (mod p).
	sum := (lo & MersennePrime) + (lo >> 61) + ((hi << 3) & MersennePrime) + (hi >> 58)
	sum = (sum & MersennePrime) + (sum >> 61)
	if sum >= MersennePrime {
		sum -= MersennePrime
	}
	return sum
}

// addModMersenne returns (a + b) mod (2^61 − 1) for a, b < 2^61.
func addModMersenne(a, b uint64) uint64 {
	sum := a + b
	sum = (sum & MersennePrime) + (sum >> 61)
	if sum >= MersennePrime {
		sum -= MersennePrime
	}
	return sum
}

// reduceModMersenne reduces an arbitrary 64-bit value mod 2^61 − 1.
func reduceModMersenne(x uint64) uint64 {
	x = (x & MersennePrime) + (x >> 61)
	if x >= MersennePrime {
		x -= MersennePrime
	}
	return x
}

// Universal2 is one member h_{a,b} of the 2-universal family mapping uint64
// keys to buckets [0, K).
type Universal2 struct {
	a, b uint64
	k    uint64
}

// NewUniversal2 draws a random member of the family with range [0, k).
// It returns an error if k == 0.
func NewUniversal2(k int, r *rng.Xoshiro) (Universal2, error) {
	if k <= 0 {
		return Universal2{}, fmt.Errorf("hashing: bucket count must be positive, got %d", k)
	}
	if r == nil {
		return Universal2{}, errors.New("hashing: nil random source")
	}
	a := 1 + r.Uint64n(MersennePrime-1) // a ∈ [1, p−1]
	b := r.Uint64n(MersennePrime)       // b ∈ [0, p−1]
	return Universal2{a: a, b: b, k: uint64(k)}, nil
}

// NewUniversal2FromParams reconstructs a family member from its parameters
// (for deserialising sketches); a must lie in [1, p−1] and b in [0, p−1].
func NewUniversal2FromParams(a, b uint64, k int) (Universal2, error) {
	if k <= 0 {
		return Universal2{}, fmt.Errorf("hashing: bucket count must be positive, got %d", k)
	}
	if a < 1 || a >= MersennePrime {
		return Universal2{}, fmt.Errorf("hashing: parameter a=%d outside [1, p-1]", a)
	}
	if b >= MersennePrime {
		return Universal2{}, fmt.Errorf("hashing: parameter b=%d outside [0, p-1]", b)
	}
	return Universal2{a: a, b: b, k: uint64(k)}, nil
}

// Params returns the (a, b) parameters identifying this family member, so a
// sketch can be serialised and later reconstructed with identical hashing.
func (h Universal2) Params() (a, b uint64) { return h.a, h.b }

// K returns the number of buckets.
func (h Universal2) K() int { return int(h.k) }

// Hash maps x to a bucket in [0, K).
//
// The key is first passed through a fixed 64-bit bijection (the splitmix64
// finalizer). Composing a 2-universal family with a fixed bijection keeps it
// 2-universal, and the mixing reproduces the paper's setting in which node
// identifiers are SHA-1-sized random values: without it, consecutive integer
// ids form arithmetic progressions under the linear map and can leave hash
// buckets systematically uncovered.
func (h Universal2) Hash(x uint64) int {
	v := addModMersenne(mulModMersenne(h.a, reduceModMersenne(rng.Mix64(x))), h.b)
	return int(v % h.k)
}

// Family is an independent collection of 2-universal hash functions sharing
// the same range, as used by the Count-Min sketch (one function per row).
type Family struct {
	fns []Universal2
}

// NewFamily draws s independent functions with range [0, k).
func NewFamily(s, k int, r *rng.Xoshiro) (*Family, error) {
	if s <= 0 {
		return nil, fmt.Errorf("hashing: family size must be positive, got %d", s)
	}
	fns := make([]Universal2, s)
	for i := range fns {
		h, err := NewUniversal2(k, r)
		if err != nil {
			return nil, fmt.Errorf("draw function %d: %w", i, err)
		}
		fns[i] = h
	}
	return &Family{fns: fns}, nil
}

// NewFamilyFromParams reconstructs a family from serialised member
// parameters, all sharing the bucket count k.
func NewFamilyFromParams(params [][2]uint64, k int) (*Family, error) {
	if len(params) == 0 {
		return nil, errors.New("hashing: empty parameter list")
	}
	fns := make([]Universal2, len(params))
	for i, p := range params {
		h, err := NewUniversal2FromParams(p[0], p[1], k)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		fns[i] = h
	}
	return &Family{fns: fns}, nil
}

// Params returns each member's (a, b) parameters in order.
func (f *Family) Params() [][2]uint64 {
	out := make([][2]uint64, len(f.fns))
	for i, fn := range f.fns {
		out[i][0], out[i][1] = fn.Params()
	}
	return out
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.fns) }

// K returns the shared bucket count.
func (f *Family) K() int { return f.fns[0].K() }

// Hash returns the bucket of x under the i-th function.
func (f *Family) Hash(i int, x uint64) int { return f.fns[i].Hash(x) }

// MinWise is a random "permutation" over the 61-bit id universe used by the
// Brahms-style baseline (Bortnikov et al.): the sampler keeps the id whose
// image under the permutation is minimal. A pairwise-independent linear
// function modulo a prime is a standard min-wise approximation; we expose it
// as a total order over ids.
type MinWise struct {
	a, b uint64
}

// NewMinWise draws a random member of the min-wise family.
func NewMinWise(r *rng.Xoshiro) (MinWise, error) {
	if r == nil {
		return MinWise{}, errors.New("hashing: nil random source")
	}
	a := 1 + r.Uint64n(MersennePrime-1)
	b := r.Uint64n(MersennePrime)
	return MinWise{a: a, b: b}, nil
}

// Image returns the permutation image of x, a value in [0, p). The key is
// pre-mixed with the same fixed bijection as Universal2.Hash, for the same
// reason: structured integer ids must behave like the paper's random
// SHA-1-sized identifiers.
func (m MinWise) Image(x uint64) uint64 {
	return addModMersenne(mulModMersenne(m.a, reduceModMersenne(rng.Mix64(x))), m.b)
}

// Less reports whether x precedes y under the permutation order.
func (m MinWise) Less(x, y uint64) bool { return m.Image(x) < m.Image(y) }
