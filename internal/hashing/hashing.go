// Package hashing implements the 2-universal hash family the paper relies on
// (Section III-D) plus the min-wise hashing used by the Brahms-style
// baseline sampler.
//
// The family is the classic Carter–Wegman construction over the Mersenne
// prime p = 2^61 − 1:
//
//	h_{a,b}(x) = ((a·x + b) mod p) mod k,  a ∈ [1, p−1], b ∈ [0, p−1]
//
// For any two distinct x, y the collision probability over the random choice
// of (a, b) is at most 1/k (up to the negligible p-rounding term), which is
// exactly the 2-universality property Algorithm 2 (Count-Min sketch) and the
// urn analysis of Section V assume.
package hashing

import (
	"errors"
	"fmt"
	"math/bits"

	"nodesampling/internal/rng"
)

// MersennePrime is p = 2^61 − 1, the modulus of the hash family.
const MersennePrime uint64 = (1 << 61) - 1

// Mode selects how a family member's 61-bit linear value v = (a·x+b) mod p
// is mapped onto its bucket range [0, K). The two maps partition [0, p)
// differently, so the mode is part of a family's identity: sketches built
// under different modes place ids in different columns and must never be
// merged, and serialised sketches record their mode (cms marshal version 2)
// so a restored sketch keeps estimating bit-identically.
type Mode uint8

const (
	// ModeModulo is the original map, bucket = v mod k — one 64-bit
	// division per row per key. Every sketch serialised before modes
	// existed is a ModeModulo sketch.
	ModeModulo Mode = iota
	// ModeFastrange is Lemire's multiply-shift range reduction: v is
	// scaled to the full 64-bit range (v < 2^61, so v·8 loses nothing)
	// and bucket = high64(8v · k) = ⌊v·k/2^61⌋ — a multiply instead of a
	// division. The map is still an (almost) equipartition of [0, p) into
	// k buckets, just by contiguous blocks instead of residue classes, so
	// composed with the 2-universal family it has the same collision
	// bound; only the concrete bucket of a given (a, b, v) differs.
	ModeFastrange
)

func (m Mode) String() string {
	switch m {
	case ModeModulo:
		return "modulo"
	case ModeFastrange:
		return "fastrange"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// valid reports whether m names a defined mode (for deserialisation).
func (m Mode) valid() bool { return m == ModeModulo || m == ModeFastrange }

// mulModMersenne returns (a * b) mod (2^61 − 1) using a 128-bit intermediate
// product and the standard fold reduction for Mersenne primes.
func mulModMersenne(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a*b = hi·2^64 + lo. With p = 2^61 − 1 we have 2^61 ≡ 1 (mod p), so we
	// fold the value into 61-bit chunks and sum them.
	// lo = lo61 + 2^61·loHi where loHi has 3 bits; hi contributes hi·2^64 =
	// hi·8·2^61 ≡ 8·hi (mod p).
	sum := (lo & MersennePrime) + (lo >> 61) + ((hi << 3) & MersennePrime) + (hi >> 58)
	sum = (sum & MersennePrime) + (sum >> 61)
	if sum >= MersennePrime {
		sum -= MersennePrime
	}
	return sum
}

// addModMersenne returns (a + b) mod (2^61 − 1) for a, b < 2^61.
func addModMersenne(a, b uint64) uint64 {
	sum := a + b
	sum = (sum & MersennePrime) + (sum >> 61)
	if sum >= MersennePrime {
		sum -= MersennePrime
	}
	return sum
}

// reduceModMersenne reduces an arbitrary 64-bit value mod 2^61 − 1.
func reduceModMersenne(x uint64) uint64 {
	x = (x & MersennePrime) + (x >> 61)
	if x >= MersennePrime {
		x -= MersennePrime
	}
	return x
}

// Universal2 is one member h_{a,b} of the 2-universal family mapping uint64
// keys to buckets [0, K).
type Universal2 struct {
	a, b uint64
	k    uint64
	mode Mode
}

// NewUniversal2 draws a random member of the family with range [0, k) under
// the legacy modulo bucket map. It returns an error if k == 0.
func NewUniversal2(k int, r *rng.Xoshiro) (Universal2, error) {
	return NewUniversal2Mode(k, r, ModeModulo)
}

// NewUniversal2Mode draws a random member with an explicit bucket map mode.
func NewUniversal2Mode(k int, r *rng.Xoshiro, mode Mode) (Universal2, error) {
	if k <= 0 {
		return Universal2{}, fmt.Errorf("hashing: bucket count must be positive, got %d", k)
	}
	if k > maxFastrangeK && mode == ModeFastrange {
		return Universal2{}, fmt.Errorf("hashing: bucket count %d exceeds fastrange limit %d", k, maxFastrangeK)
	}
	if r == nil {
		return Universal2{}, errors.New("hashing: nil random source")
	}
	if !mode.valid() {
		return Universal2{}, fmt.Errorf("hashing: unknown bucket map %v", mode)
	}
	a := 1 + r.Uint64n(MersennePrime-1) // a ∈ [1, p−1]
	b := r.Uint64n(MersennePrime)       // b ∈ [0, p−1]
	return Universal2{a: a, b: b, k: uint64(k), mode: mode}, nil
}

// maxFastrangeK bounds the bucket count under ModeFastrange so the scaled
// product 8v·k (v < 2^61) stays exact in the 128-bit intermediate; 2^31 is
// far beyond any sketch width the service uses and matches the modulo
// path's practical range.
const maxFastrangeK = 1 << 31

// NewUniversal2FromParams reconstructs a family member from its parameters
// (for deserialising sketches); a must lie in [1, p−1] and b in [0, p−1].
// The member uses the legacy modulo bucket map.
func NewUniversal2FromParams(a, b uint64, k int) (Universal2, error) {
	return NewUniversal2FromParamsMode(a, b, k, ModeModulo)
}

// NewUniversal2FromParamsMode is NewUniversal2FromParams with an explicit
// bucket map mode, for sketches serialised after modes existed.
func NewUniversal2FromParamsMode(a, b uint64, k int, mode Mode) (Universal2, error) {
	if k <= 0 {
		return Universal2{}, fmt.Errorf("hashing: bucket count must be positive, got %d", k)
	}
	if k > maxFastrangeK && mode == ModeFastrange {
		return Universal2{}, fmt.Errorf("hashing: bucket count %d exceeds fastrange limit %d", k, maxFastrangeK)
	}
	if a < 1 || a >= MersennePrime {
		return Universal2{}, fmt.Errorf("hashing: parameter a=%d outside [1, p-1]", a)
	}
	if b >= MersennePrime {
		return Universal2{}, fmt.Errorf("hashing: parameter b=%d outside [0, p-1]", b)
	}
	if !mode.valid() {
		return Universal2{}, fmt.Errorf("hashing: unknown bucket map %v", mode)
	}
	return Universal2{a: a, b: b, k: uint64(k), mode: mode}, nil
}

// Params returns the (a, b) parameters identifying this family member, so a
// sketch can be serialised and later reconstructed with identical hashing.
func (h Universal2) Params() (a, b uint64) { return h.a, h.b }

// K returns the number of buckets.
func (h Universal2) K() int { return int(h.k) }

// Mode returns the member's bucket map mode.
func (h Universal2) Mode() Mode { return h.mode }

// bucket maps a 61-bit linear value v = (a·x+b) mod p onto [0, K) under the
// member's mode.
func (h Universal2) bucket(v uint64) int {
	if h.mode == ModeFastrange {
		// v < 2^61, so v<<3 occupies the full 64-bit range without overflow
		// and hi = ⌊v·k/2^61⌋ ∈ [0, k). Without the shift the product would
		// only cover [0, k/8): fastrange divides the *input* range evenly,
		// so the input must span the whole 64-bit word.
		hi, _ := bits.Mul64(v<<3, h.k)
		return int(hi)
	}
	return int(v % h.k)
}

// Hash maps x to a bucket in [0, K).
//
// The key is first passed through a fixed 64-bit bijection (the splitmix64
// finalizer). Composing a 2-universal family with a fixed bijection keeps it
// 2-universal, and the mixing reproduces the paper's setting in which node
// identifiers are SHA-1-sized random values: without it, consecutive integer
// ids form arithmetic progressions under the linear map and can leave hash
// buckets systematically uncovered.
//
// This is the reference implementation of the row hash; the hot path is
// Family.Columns, which a property test pins against per-row Hash calls
// bit-for-bit.
func (h Universal2) Hash(x uint64) int {
	return h.bucket(addModMersenne(mulModMersenne(h.a, reduceModMersenne(rng.Mix64(x))), h.b))
}

// Family is an independent collection of 2-universal hash functions sharing
// the same range and bucket map mode, as used by the Count-Min sketch (one
// function per row).
type Family struct {
	fns  []Universal2
	mode Mode
}

// NewFamily draws s independent functions with range [0, k) under
// ModeFastrange — the default for every newly built sketch. Families
// reconstructed from pre-mode serialised parameters (NewFamilyFromParams)
// stay on ModeModulo so their column maps never change.
func NewFamily(s, k int, r *rng.Xoshiro) (*Family, error) {
	return NewFamilyMode(s, k, r, ModeFastrange)
}

// NewFamilyMode draws s independent functions with an explicit bucket map.
func NewFamilyMode(s, k int, r *rng.Xoshiro, mode Mode) (*Family, error) {
	if s <= 0 {
		return nil, fmt.Errorf("hashing: family size must be positive, got %d", s)
	}
	fns := make([]Universal2, s)
	for i := range fns {
		h, err := NewUniversal2Mode(k, r, mode)
		if err != nil {
			return nil, fmt.Errorf("draw function %d: %w", i, err)
		}
		fns[i] = h
	}
	return &Family{fns: fns, mode: mode}, nil
}

// NewFamilyFromParams reconstructs a family from serialised member
// parameters, all sharing the bucket count k, under the legacy modulo map —
// the mode every sketch serialised before modes existed was built with.
func NewFamilyFromParams(params [][2]uint64, k int) (*Family, error) {
	return NewFamilyFromParamsMode(params, k, ModeModulo)
}

// NewFamilyFromParamsMode reconstructs a family with an explicit mode, for
// deserialising sketches whose blob records one.
func NewFamilyFromParamsMode(params [][2]uint64, k int, mode Mode) (*Family, error) {
	if len(params) == 0 {
		return nil, errors.New("hashing: empty parameter list")
	}
	fns := make([]Universal2, len(params))
	for i, p := range params {
		h, err := NewUniversal2FromParamsMode(p[0], p[1], k, mode)
		if err != nil {
			return nil, fmt.Errorf("member %d: %w", i, err)
		}
		fns[i] = h
	}
	return &Family{fns: fns, mode: mode}, nil
}

// Params returns each member's (a, b) parameters in order.
func (f *Family) Params() [][2]uint64 {
	out := make([][2]uint64, len(f.fns))
	for i, fn := range f.fns {
		out[i][0], out[i][1] = fn.Params()
	}
	return out
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.fns) }

// K returns the shared bucket count.
func (f *Family) K() int { return f.fns[0].K() }

// Mode returns the family's shared bucket map mode. Families with equal
// (a, b) parameters but different modes hash to different columns and are
// therefore distinct families.
func (f *Family) Mode() Mode { return f.mode }

// Hash returns the bucket of x under the i-th function. This per-row form
// is the reference path; batch consumers use Columns.
func (f *Family) Hash(i int, x uint64) int { return f.fns[i].Hash(x) }

// Columns computes the bucket of x under every function in one fused pass,
// writing member i's bucket to cols[i]; cols must have length ≥ Size. The
// splitmix64 premix and its Mersenne reduction are row-invariant, so they
// run once per key instead of once per row, and the per-row tail is a
// single mul-mod, add-mod and bucket map. Bit-identical to calling Hash per
// row (the property the fused-vs-reference test pins).
func (f *Family) Columns(x uint64, cols []int) {
	u := reduceModMersenne(rng.Mix64(x))
	if f.mode == ModeFastrange {
		for i := range f.fns {
			h := &f.fns[i]
			v := addModMersenne(mulModMersenne(h.a, u), h.b)
			hi, _ := bits.Mul64(v<<3, h.k)
			cols[i] = int(hi)
		}
		return
	}
	for i := range f.fns {
		h := &f.fns[i]
		cols[i] = int(addModMersenne(mulModMersenne(h.a, u), h.b) % h.k)
	}
}

// MinWise is a random "permutation" over the 61-bit id universe used by the
// Brahms-style baseline (Bortnikov et al.): the sampler keeps the id whose
// image under the permutation is minimal. A pairwise-independent linear
// function modulo a prime is a standard min-wise approximation; we expose it
// as a total order over ids.
type MinWise struct {
	a, b uint64
}

// NewMinWise draws a random member of the min-wise family.
func NewMinWise(r *rng.Xoshiro) (MinWise, error) {
	if r == nil {
		return MinWise{}, errors.New("hashing: nil random source")
	}
	a := 1 + r.Uint64n(MersennePrime-1)
	b := r.Uint64n(MersennePrime)
	return MinWise{a: a, b: b}, nil
}

// Image returns the permutation image of x, a value in [0, p). The key is
// pre-mixed with the same fixed bijection as Universal2.Hash, for the same
// reason: structured integer ids must behave like the paper's random
// SHA-1-sized identifiers.
func (m MinWise) Image(x uint64) uint64 {
	return addModMersenne(mulModMersenne(m.a, reduceModMersenne(rng.Mix64(x))), m.b)
}

// Less reports whether x precedes y under the permutation order.
func (m MinWise) Less(x, y uint64) bool { return m.Image(x) < m.Image(y) }
