package hashing

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"nodesampling/internal/rng"
)

// TestMulModMersenneAgainstBig cross-checks the fast Mersenne reduction
// against math/big over random operands.
func TestMulModMersenneAgainstBig(t *testing.T) {
	r := rng.New(1)
	p := new(big.Int).SetUint64(MersennePrime)
	for i := 0; i < 20000; i++ {
		a := r.Uint64n(MersennePrime)
		b := r.Uint64n(MersennePrime)
		got := mulModMersenne(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Fatalf("mulModMersenne(%d, %d) = %d, want %d", a, b, got, want.Uint64())
		}
	}
}

func TestMulModMersenneEdgeCases(t *testing.T) {
	cases := []struct{ a, b uint64 }{
		{0, 0},
		{0, MersennePrime - 1},
		{MersennePrime - 1, MersennePrime - 1},
		{1, MersennePrime - 1},
		{MersennePrime / 2, 2},
	}
	p := new(big.Int).SetUint64(MersennePrime)
	for _, c := range cases {
		got := mulModMersenne(c.a, c.b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(c.a), new(big.Int).SetUint64(c.b))
		want.Mod(want, p)
		if got != want.Uint64() {
			t.Errorf("mulModMersenne(%d, %d) = %d, want %d", c.a, c.b, got, want.Uint64())
		}
	}
}

func TestAddModMersenneProperty(t *testing.T) {
	r := rng.New(2)
	f := func(_ uint64) bool {
		a := r.Uint64n(MersennePrime)
		b := r.Uint64n(MersennePrime)
		got := addModMersenne(a, b)
		want := (a + b) % MersennePrime
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceModMersenne(t *testing.T) {
	r := rng.New(3)
	for i := 0; i < 10000; i++ {
		x := r.Uint64()
		if got, want := reduceModMersenne(x), x%MersennePrime; got != want {
			t.Fatalf("reduceModMersenne(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestNewUniversal2Validation(t *testing.T) {
	r := rng.New(4)
	if _, err := NewUniversal2(0, r); err == nil {
		t.Error("NewUniversal2(0) should fail")
	}
	if _, err := NewUniversal2(-3, r); err == nil {
		t.Error("NewUniversal2(-3) should fail")
	}
	if _, err := NewUniversal2(10, nil); err == nil {
		t.Error("NewUniversal2 with nil rng should fail")
	}
}

func TestUniversal2Range(t *testing.T) {
	r := rng.New(5)
	for _, k := range []int{1, 2, 7, 64, 1000} {
		h, err := NewUniversal2(k, r)
		if err != nil {
			t.Fatal(err)
		}
		if h.K() != k {
			t.Fatalf("K() = %d, want %d", h.K(), k)
		}
		for i := 0; i < 1000; i++ {
			if b := h.Hash(r.Uint64()); b < 0 || b >= k {
				t.Fatalf("bucket %d out of range [0,%d)", b, k)
			}
		}
	}
}

// TestUniversal2CollisionBound estimates the pairwise collision probability
// over random draws of the function and checks it is close to 1/k, the
// 2-universality guarantee from Section III-D of the paper.
func TestUniversal2CollisionBound(t *testing.T) {
	r := rng.New(6)
	const k = 16
	const pairs = 64
	const draws = 4000
	collisions := 0
	for i := 0; i < pairs; i++ {
		x := r.Uint64()
		y := r.Uint64()
		if x == y {
			continue
		}
		for j := 0; j < draws/pairs; j++ {
			h, err := NewUniversal2(k, r)
			if err != nil {
				t.Fatal(err)
			}
			if h.Hash(x) == h.Hash(y) {
				collisions++
			}
		}
	}
	p := float64(collisions) / draws
	// 2-universality promises p <= 1/k (up to rounding); allow generous
	// statistical slack above the bound.
	bound := 1.0/k + 4*math.Sqrt((1.0/k)*(1-1.0/k)/draws)
	if p > bound {
		t.Fatalf("collision probability %v exceeds 2-universal bound %v", p, bound)
	}
}

// TestUniversal2Uniformity checks a single drawn function spreads a
// structured key set (consecutive integers) evenly via a chi-square test.
func TestUniversal2Uniformity(t *testing.T) {
	r := rng.New(7)
	const k = 32
	const n = 64000
	h, err := NewUniversal2(k, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for x := uint64(0); x < n; x++ {
		counts[h.Hash(x)]++
	}
	want := float64(n) / k
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 31 degrees of freedom; 99.9th percentile is about 61.1. A pairwise-
	// independent linear map on consecutive keys is in fact very regular, so
	// this is a loose sanity check rather than a sharp test.
	if chi2 > 100 {
		t.Fatalf("chi-square %v too large for uniform buckets", chi2)
	}
}

func TestFamilyIndependentFunctions(t *testing.T) {
	r := rng.New(8)
	f, err := NewFamily(5, 64, r)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 5 || f.K() != 64 {
		t.Fatalf("family shape = (%d, %d), want (5, 64)", f.Size(), f.K())
	}
	// Two distinct rows should disagree on most keys.
	agree := 0
	const n = 1000
	for i := 0; i < n; i++ {
		x := r.Uint64()
		if f.Hash(0, x) == f.Hash(1, x) {
			agree++
		}
	}
	if agree > n/4 {
		t.Fatalf("rows 0 and 1 agreed on %d/%d keys; functions look identical", agree, n)
	}
}

func TestNewFamilyValidation(t *testing.T) {
	r := rng.New(9)
	if _, err := NewFamily(0, 8, r); err == nil {
		t.Error("NewFamily(0, 8) should fail")
	}
	if _, err := NewFamily(3, 0, r); err == nil {
		t.Error("NewFamily(3, 0) should fail")
	}
}

func TestMinWiseIsInjectiveOnSamples(t *testing.T) {
	r := rng.New(10)
	m, err := NewMinWise(r)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		x := r.Uint64n(MersennePrime)
		img := m.Image(x)
		if prev, ok := seen[img]; ok && prev != x {
			t.Fatalf("min-wise image collision: %d and %d both map to %d", prev, x, img)
		}
		seen[img] = x
	}
}

func TestMinWiseMinUniformity(t *testing.T) {
	// The defining property of min-wise families: over the random draw of
	// the permutation, each element of a fixed set is the minimum with
	// probability close to 1/|set|.
	r := rng.New(11)
	ids := []uint64{3, 17, 101, 9999, 123456789}
	const draws = 20000
	wins := make([]int, len(ids))
	for d := 0; d < draws; d++ {
		m, err := NewMinWise(r)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for i := 1; i < len(ids); i++ {
			if m.Less(ids[i], ids[best]) {
				best = i
			}
		}
		wins[best]++
	}
	want := float64(draws) / float64(len(ids))
	for i, w := range wins {
		if math.Abs(float64(w)-want) > 6*math.Sqrt(want) {
			t.Fatalf("id %d was minimum %d times, want about %v", ids[i], w, want)
		}
	}
}

func TestMinWiseNilRNG(t *testing.T) {
	if _, err := NewMinWise(nil); err == nil {
		t.Error("NewMinWise(nil) should fail")
	}
}

func BenchmarkUniversal2Hash(b *testing.B) {
	r := rng.New(1)
	h, err := NewUniversal2(1024, r)
	if err != nil {
		b.Fatal(err)
	}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkMinWiseImage(b *testing.B) {
	r := rng.New(1)
	m, err := NewMinWise(r)
	if err != nil {
		b.Fatal(err)
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Image(uint64(i))
	}
	_ = sink
}

// TestColumnsMatchesHash pins the fused bulk path against the per-row
// reference Hash bit-for-bit, over randomized shapes and keys, both bucket
// maps, and bucket counts up to the fastrange limit (k near 2^31 exercises
// the scaled multiply's top end).
func TestColumnsMatchesHash(t *testing.T) {
	r := rng.New(99)
	ks := []int{1, 2, 3, 7, 10, 1000, 1 << 20, (1 << 31) - 1, 1 << 31}
	for _, mode := range []Mode{ModeModulo, ModeFastrange} {
		for _, k := range ks {
			for _, s := range []int{1, 4, 17} {
				f, err := NewFamilyMode(s, k, r, mode)
				if err != nil {
					t.Fatal(err)
				}
				if f.Mode() != mode {
					t.Fatalf("family mode %v, want %v", f.Mode(), mode)
				}
				cols := make([]int, s)
				for trial := 0; trial < 200; trial++ {
					x := r.Uint64()
					if trial < 4 {
						// Also cover structured keys: 0, 1, p, ^0.
						x = []uint64{0, 1, MersennePrime, ^uint64(0)}[trial]
					}
					f.Columns(x, cols)
					for row := 0; row < s; row++ {
						want := f.Hash(row, x)
						if cols[row] != want {
							t.Fatalf("mode %v k=%d s=%d row %d key %#x: Columns %d != Hash %d",
								mode, k, s, row, x, cols[row], want)
						}
						if cols[row] < 0 || cols[row] >= k {
							t.Fatalf("mode %v k=%d: bucket %d out of range", mode, k, cols[row])
						}
					}
				}
			}
		}
	}
}

// TestModesDisagree: for a non-trivial bucket count the two maps must be
// genuinely different functions of the same (a, b) parameters — otherwise
// the mode versioning would be guarding nothing.
func TestModesDisagree(t *testing.T) {
	r := rng.New(5)
	fm, err := NewFamilyMode(4, 1000, r, ModeModulo)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := NewFamilyFromParamsMode(fm.Params(), 1000, ModeFastrange)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for x := uint64(0); x < 1000; x++ {
		for row := 0; row < 4; row++ {
			if fm.Hash(row, x) != ff.Hash(row, x) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("modulo and fastrange agreed on every key; modes are not distinct maps")
	}
}

// TestFastrangeUniform: the fastrange map composed with the family stays
// statistically uniform (the same chi-square criterion the modulo map
// passes).
func TestFastrangeUniform(t *testing.T) {
	const k, draws = 64, 200000
	r := rng.New(11)
	h, err := NewUniversal2Mode(k, r, ModeFastrange)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for i := 0; i < draws; i++ {
		counts[h.Hash(r.Uint64())]++
	}
	want := float64(draws) / k
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - want
		chi2 += d * d / want
	}
	// 99.9th percentile of chi-square with 63 degrees of freedom ≈ 103.
	if chi2 > 103 {
		t.Fatalf("chi-square %.1f over 63 dof; fastrange buckets not uniform", chi2)
	}
}

// TestFamilyFromParamsModeRoundTrip: params + mode reconstruct the exact
// family under both modes.
func TestFamilyFromParamsModeRoundTrip(t *testing.T) {
	r := rng.New(3)
	for _, mode := range []Mode{ModeModulo, ModeFastrange} {
		f, err := NewFamilyMode(3, 777, r, mode)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewFamilyFromParamsMode(f.Params(), 777, mode)
		if err != nil {
			t.Fatal(err)
		}
		if g.Mode() != mode {
			t.Fatalf("mode %v lost in round trip", mode)
		}
		for x := uint64(0); x < 500; x++ {
			for row := 0; row < 3; row++ {
				if f.Hash(row, x) != g.Hash(row, x) {
					t.Fatalf("mode %v: reconstructed family diverged at key %d", mode, x)
				}
			}
		}
	}
}

func BenchmarkFamilyColumns(b *testing.B) {
	for _, mode := range []Mode{ModeModulo, ModeFastrange} {
		b.Run(mode.String(), func(b *testing.B) {
			f, err := NewFamilyMode(5, 1024, rng.New(1), mode)
			if err != nil {
				b.Fatal(err)
			}
			cols := make([]int, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Columns(uint64(i), cols)
			}
		})
	}
}
