// Package subhub implements the fan-out half of the streaming output plane:
// a subscription hub that distributes the sampling service's output stream
// σ′ to many subscribers without ever letting a slow subscriber backpressure
// the producer.
//
// Each subscriber owns a fixed-capacity ring buffer filled by Publish under
// a non-blocking drop-oldest policy, and a pump goroutine that moves ring
// contents onto the subscriber's delivery channel. Publish only appends to
// rings — it never blocks and never waits for a consumer — so ingestion
// throughput is decoupled from delivery entirely, mirroring the root
// package's Service guarantee that a lagging subscriber costs dropped
// stream elements (which a sampling stream can always afford: a later draw
// carries the same information) rather than stalling the pipeline.
//
// Subscriptions may opt into decimation (SubscribeEvery): only every k-th
// offered id enters the ring, so a modest consumer rides a fast hub
// without paying for draws it would discard. They may additionally opt
// into a delivery rate cap (SubscribeWith): a token bucket refilled at
// RatePerSec ids/second, with one second of burst, discards (and counts)
// ids beyond the budget before they reach the ring — the absolute ceiling
// complementing decimation's relative thinning, for consumers that want
// "at most R ids/second" regardless of how fast the pool runs.
//
// Accounting is exact: every id offered to a subscription is eventually
// counted as delivered (handed to the delivery channel), dropped
// (overwritten in the ring, or discarded at cancellation), filtered
// (thinned away by the decimation interval) or capped (discarded by the
// rate limiter), so Offered == Delivered + Dropped + Filtered + Capped
// once a subscription has been cancelled.
package subhub

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrHubClosed is returned by Subscribe after Close.
var ErrHubClosed = errors.New("subhub: hub closed")

// MaxSubscriptionBuffer bounds a single subscription's ring capacity; a
// network daemon must not let one Subscribe request pin an arbitrary
// allocation.
const MaxSubscriptionBuffer = 1 << 20

// MaxDecimation bounds a subscription's sample-every-k interval; beyond it
// a subscriber is asking for practically no stream at all.
const MaxDecimation = 1 << 20

// Hub fans the output stream out to its current subscribers. All methods
// are safe for concurrent use. A Hub is created with New and released with
// Close, which cancels every remaining subscription.
type Hub struct {
	mu     sync.Mutex
	subs   []*Subscription
	nextID uint64
	closed bool

	// active mirrors len(subs) so producers can gate σ′ generation on a
	// single atomic load instead of taking the hub lock per batch.
	active atomic.Int32
}

// New creates an empty hub.
func New() *Hub { return &Hub{} }

// Active reports whether at least one subscription is live. Producers use
// it to skip output-draw generation entirely while nobody is listening.
func (h *Hub) Active() bool { return h.active.Load() > 0 }

// NumSubscribers returns the current number of live subscriptions.
func (h *Hub) NumSubscribers() int { return int(h.active.Load()) }

// Subscribe registers a new subscriber with a ring buffer (and delivery
// channel) of the given capacity, in ids.
func (h *Hub) Subscribe(capacity int) (*Subscription, error) {
	return h.SubscribeEvery(capacity, 1)
}

// SubscribeEvery is Subscribe with per-subscription decimation: only every
// every-th id offered to this subscription enters its ring (the rest are
// counted as filtered, not dropped). Decimation lets a modest consumer
// ride a fast hub without paying — in buffering or in drops — for stream
// elements it would discard anyway; because the retained draws are a
// deterministic 1-in-k thinning of an i.i.d. uniform stream, they are
// themselves i.i.d. uniform. every == 1 delivers everything.
func (h *Hub) SubscribeEvery(capacity, every int) (*Subscription, error) {
	if every < 1 {
		return nil, fmt.Errorf("subhub: decimation interval must be in [1, %d], got %d", MaxDecimation, every)
	}
	return h.SubscribeWith(SubOptions{Capacity: capacity, Every: every})
}

// SubOptions parameterises SubscribeWith, the full subscription surface.
type SubOptions struct {
	// Capacity is the ring buffer (and delivery channel) size, in ids.
	// Required, in [1, MaxSubscriptionBuffer].
	Capacity int
	// Every is the decimation interval (0 and 1 both deliver everything),
	// at most MaxDecimation.
	Every int
	// RatePerSec, when positive, caps delivery at that many ids per second
	// via a token bucket with one second of burst; ids beyond the budget
	// are counted as capped and never enter the ring.
	RatePerSec uint32
	// InitialSeen seeds the decimation phase: the subscription behaves as
	// if InitialSeen ids had already been offered to its 1-in-Every
	// thinning window (taken modulo Every). A reconnecting subscriber
	// passes its previous subscription's Seen() so the stitched-together
	// stream never stretches the delivery spacing beyond Every.
	InitialSeen uint64
}

// SubscribeWith registers a new subscriber with decimation, rate capping
// and decimation-phase seeding per o.
func (h *Hub) SubscribeWith(o SubOptions) (*Subscription, error) {
	capacity, every := o.Capacity, o.Every
	if capacity < 1 || capacity > MaxSubscriptionBuffer {
		return nil, fmt.Errorf("subhub: subscription capacity must be in [1, %d], got %d", MaxSubscriptionBuffer, capacity)
	}
	if every == 0 {
		every = 1
	}
	if every < 1 || every > MaxDecimation {
		return nil, fmt.Errorf("subhub: decimation interval must be in [1, %d], got %d", MaxDecimation, every)
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHubClosed
	}
	h.nextID++
	s := &Subscription{
		id:       h.nextID,
		hub:      h,
		every:    uint64(every),
		seen:     o.InitialSeen % uint64(every),
		rate:     float64(o.RatePerSec),
		ring:     make([]uint64, capacity),
		out:      make(chan uint64, capacity),
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		pumpDone: make(chan struct{}),
		now:      func() int64 { return time.Now().UnixNano() },
	}
	if s.rate > 0 {
		// A full bucket at birth: the first second's budget is available
		// immediately, then refills at RatePerSec.
		s.tokens = s.rate
		s.lastRefill = s.now()
	}
	h.subs = append(h.subs, s)
	h.active.Add(1)
	h.mu.Unlock()
	go s.pump()
	return s, nil
}

// Unsubscribe cancels a subscription. Equivalent to s.Cancel; nil-safe and
// idempotent.
func (h *Hub) Unsubscribe(s *Subscription) {
	if s != nil {
		s.Cancel()
	}
}

// Publish offers ids to every current subscriber. It never blocks: a full
// ring overwrites its oldest element (counted against that subscriber).
// The ids slice is copied into the rings; the caller keeps ownership.
func (h *Hub) Publish(ids []uint64) {
	if len(ids) == 0 || h.active.Load() == 0 {
		return
	}
	h.mu.Lock()
	for _, s := range h.subs {
		s.offer(ids)
	}
	h.mu.Unlock()
}

// SubStats is one subscription's delivery accounting snapshot.
type SubStats struct {
	ID        uint64 // stable per-hub subscription identifier
	Offered   uint64 // ids published while this subscription was live
	Delivered uint64 // ids handed to the delivery channel
	Dropped   uint64 // ids overwritten in the ring or discarded at cancel
	Filtered  uint64 // ids thinned away by the decimation interval
	Capped    uint64 // ids discarded by the delivery rate cap
	Capacity  int    // ring capacity
	Depth     int    // ids buffered and not yet consumed (ring + channel)
	Every     int    // decimation interval (1 delivers everything)
	Rate      uint32 // delivery rate cap in ids/second (0 = uncapped)
}

// Stats returns a snapshot of every live subscription's counters.
func (h *Hub) Stats() []SubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SubStats, len(h.subs))
	for i, s := range h.subs {
		out[i] = s.stats()
	}
	return out
}

// remove unlinks s from the hub (cancel path). Idempotent per subscription
// because Cancel runs at most once.
func (h *Hub) remove(s *Subscription) {
	h.mu.Lock()
	for i, cur := range h.subs {
		if cur == s {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			h.active.Add(-1)
			break
		}
	}
	h.mu.Unlock()
}

// Close cancels every subscription (closing their delivery channels) and
// rejects future Subscribe calls. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := append([]*Subscription(nil), h.subs...)
	h.mu.Unlock()
	for _, s := range subs {
		s.Cancel()
	}
}

// Subscription is one subscriber's endpoint: a ring buffer written by the
// hub and a delivery channel read by the consumer. Obtain one from
// Hub.Subscribe and release it with Cancel.
type Subscription struct {
	id  uint64
	hub *Hub

	// out is the delivery channel. Its buffer equals the ring capacity, so
	// the total lag a subscriber can accumulate before losing elements is
	// roughly twice the requested capacity.
	out chan uint64

	done       chan struct{} // closed by Cancel; unblocks the pump
	pumpDone   chan struct{} // closed when the pump goroutine exits
	cancelOnce sync.Once

	mu     sync.Mutex
	ring   []uint64
	head   int // index of the oldest buffered id
	size   int // ids currently buffered
	closed bool
	wake   chan struct{} // capacity 1: at-least-once data signal for the pump

	// every is the decimation interval; seen counts offered ids modulo it
	// (guarded by mu, like the ring it feeds).
	every uint64
	seen  uint64

	// Token-bucket rate cap (guarded by mu): tokens refill at rate per
	// second up to one second's burst; rate 0 disables the bucket (and the
	// clock read). now is the time source, swappable by same-package tests.
	rate       float64
	tokens     float64
	lastRefill int64
	now        func() int64

	offered   atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	filtered  atomic.Uint64
	capped    atomic.Uint64
}

// ID returns the hub-assigned subscription identifier.
func (s *Subscription) ID() uint64 { return s.id }

// C returns the delivery channel. It is closed after Cancel (or hub Close)
// once the pump has exited; ids already in the channel buffer remain
// readable after the close.
func (s *Subscription) C() <-chan uint64 { return s.out }

// Done returns a channel closed when the subscription is cancelled. Bridges
// that forward C to another sink select on it to unblock a pending send.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Offered returns how many ids were published while this subscription was
// live.
func (s *Subscription) Offered() uint64 { return s.offered.Load() }

// Delivered returns how many ids were handed to the delivery channel.
func (s *Subscription) Delivered() uint64 { return s.delivered.Load() }

// Dropped returns how many ids were lost to the drop-oldest policy (plus
// any discarded at cancellation).
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Filtered returns how many ids the decimation interval thinned away.
func (s *Subscription) Filtered() uint64 { return s.filtered.Load() }

// Capped returns how many ids the delivery rate cap discarded.
func (s *Subscription) Capped() uint64 { return s.capped.Load() }

// Every returns the subscription's decimation interval.
func (s *Subscription) Every() int { return int(s.every) }

// Rate returns the delivery rate cap in ids/second (0 = uncapped).
func (s *Subscription) Rate() uint32 { return uint32(s.rate) }

// Seen returns the decimation window's current phase: how many ids have
// been offered since the last one entered the ring. A server hands it to a
// reconnecting subscriber (SubOptions.InitialSeen) so the stitched stream
// keeps its 1-in-Every spacing across the reconnect.
func (s *Subscription) Seen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// Cancel detaches the subscription from the hub and closes the delivery
// channel. Ids already buffered are flushed into the channel as far as its
// capacity allows — without ever blocking — and the remainder is counted
// as dropped, so Offered == Delivered + Dropped + Filtered + Capped holds
// after cancellation and a consumer that kept up loses nothing to the
// shutdown.
// Idempotent and safe to call concurrently with Publish.
func (s *Subscription) Cancel() {
	s.cancelOnce.Do(func() {
		s.mu.Lock()
		s.closed = true // no further offers enter the ring
		s.mu.Unlock()
		close(s.done)
		s.hub.remove(s)
		<-s.pumpDone
	})
}

// offer appends ids to the ring under the drop-oldest policy. Called by the
// hub with the hub lock held; never blocks.
func (s *Subscription) offer(ids []uint64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.offered.Add(uint64(len(ids)))
	n := len(s.ring)
	var dropped, filtered, capped uint64
	if s.rate > 0 {
		// One refill per offer batch: the bucket accrues rate tokens per
		// second since the last offer, capped at one second of burst.
		// Uncapped subscriptions never reach this, so they never read the
		// clock on the publish path.
		now := s.now()
		if elapsed := float64(now-s.lastRefill) / 1e9; elapsed > 0 {
			s.tokens += elapsed * s.rate
			if s.tokens > s.rate {
				s.tokens = s.rate
			}
		}
		s.lastRefill = now
	}
	for _, id := range ids {
		if s.every > 1 {
			s.seen++
			if s.seen < s.every {
				filtered++
				continue
			}
			s.seen = 0
		}
		if s.rate > 0 {
			if s.tokens < 1 {
				capped++
				continue
			}
			s.tokens--
		}
		if s.size == n {
			s.ring[s.head] = id
			s.head++
			if s.head == n {
				s.head = 0
			}
			dropped++
		} else {
			i := s.head + s.size
			if i >= n {
				i -= n
			}
			s.ring[i] = id
			s.size++
		}
	}
	if dropped > 0 {
		s.dropped.Add(dropped)
	}
	if filtered > 0 {
		s.filtered.Add(filtered)
	}
	if capped > 0 {
		s.capped.Add(capped)
	}
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// take moves the ring contents into buf. The pump keeps calling it after
// Cancel to flush what was buffered before the cut (offers stop at Cancel,
// so the drain terminates).
func (s *Subscription) take(buf []uint64) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	for i := 0; i < s.size; i++ {
		buf = append(buf, s.ring[s.head])
		s.head++
		if s.head == n {
			s.head = 0
		}
	}
	s.size = 0
	return buf
}

// pump moves ids from the ring to the delivery channel until cancellation,
// then flushes the remainder non-blockingly (the channel buffer is the
// last stop a cancelled subscription's ids can still reach). It is the
// only sender on out, so it alone closes it.
func (s *Subscription) pump() {
	defer close(s.pumpDone)
	defer close(s.out)
	buf := make([]uint64, 0, len(s.ring))
	for {
		buf = s.take(buf[:0])
		if len(buf) == 0 {
			select {
			case <-s.wake:
				continue
			case <-s.done:
				s.flush(s.take(buf[:0]))
				return
			}
		}
		for i, id := range buf {
			select {
			case s.out <- id:
				s.delivered.Add(1)
			case <-s.done:
				// Deliver what still fits — first the rest of this chunk,
				// then whatever remains in the ring — and drop the rest.
				if s.flush(buf[i:]) {
					s.flush(s.take(buf[:0]))
				} else {
					s.dropped.Add(uint64(len(s.take(buf[:0]))))
				}
				return
			}
		}
	}
}

// flush performs the post-cancellation hand-off: non-blocking sends into
// the delivery channel's remaining buffer, counting what does not fit as
// dropped. Reports whether everything fit.
func (s *Subscription) flush(ids []uint64) bool {
	for i, id := range ids {
		select {
		case s.out <- id:
			s.delivered.Add(1)
		default:
			s.dropped.Add(uint64(len(ids) - i))
			return false
		}
	}
	return true
}

// stats snapshots the counters; the caller holds the hub lock. Depth spans
// both buffering stages — the ring and the delivery channel — so a lagging
// consumer's backlog is visible before drops begin.
func (s *Subscription) stats() SubStats {
	s.mu.Lock()
	depth := s.size + len(s.out)
	s.mu.Unlock()
	return SubStats{
		ID:        s.id,
		Offered:   s.offered.Load(),
		Delivered: s.delivered.Load(),
		Dropped:   s.dropped.Load(),
		Filtered:  s.filtered.Load(),
		Capped:    s.capped.Load(),
		Capacity:  len(s.ring),
		Depth:     depth,
		Every:     int(s.every),
		Rate:      uint32(s.rate),
	}
}
