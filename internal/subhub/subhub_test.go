package subhub

import (
	"sync"
	"testing"
	"time"
)

func TestSubscribeValidation(t *testing.T) {
	h := New()
	defer h.Close()
	if _, err := h.Subscribe(0); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := h.Subscribe(-1); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := h.Subscribe(MaxSubscriptionBuffer + 1); err == nil {
		t.Error("oversized capacity should fail")
	}
}

func TestPublishDeliversInOrder(t *testing.T) {
	h := New()
	defer h.Close()
	if h.Active() {
		t.Fatal("hub active before any subscription")
	}
	s, err := h.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Active() || h.NumSubscribers() != 1 {
		t.Fatal("hub not active after subscribe")
	}
	h.Publish([]uint64{1, 2, 3})
	h.Publish([]uint64{4, 5})
	for want := uint64(1); want <= 5; want++ {
		select {
		case got := <-s.C():
			if got != want {
				t.Fatalf("got %d, want %d", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for id %d", want)
		}
	}
	if s.Offered() != 5 || s.Delivered() != 5 || s.Dropped() != 0 {
		t.Fatalf("counters offered/delivered/dropped = %d/%d/%d",
			s.Offered(), s.Delivered(), s.Dropped())
	}
}

// TestDropOldest overfills a tiny subscription that nobody reads and checks
// that the oldest elements are the ones lost: the ring (and channel) must
// hold the newest ids.
func TestDropOldest(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.Subscribe(2) // ring 2 + channel buffer 2
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{10, 11, 12, 13, 14, 15, 16, 17}
	h.Publish(ids)
	// Wait until accounting settles: everything offered is either delivered
	// (in the channel buffer) or dropped.
	deadline := time.Now().Add(5 * time.Second)
	for s.Delivered()+s.Dropped() < uint64(len(ids)) {
		if time.Now().After(deadline) {
			t.Fatalf("accounting never settled: delivered %d dropped %d",
				s.Delivered(), s.Dropped())
		}
		time.Sleep(time.Millisecond)
	}
	if s.Dropped() == 0 {
		t.Fatal("overfilled subscription dropped nothing")
	}
	// Drain what survived; it must be a suffix-ordered subset ending near the
	// newest id (drop-oldest keeps the most recent elements flowing).
	var got []uint64
	s.Cancel()
	for id := range s.C() {
		got = append(got, id)
	}
	if len(got) == 0 {
		t.Fatal("nothing delivered")
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("out-of-order delivery %v", got)
		}
	}
	if got[0] == 10 && s.Dropped() > 0 {
		t.Fatalf("oldest id survived despite drops: %v", got)
	}
}

// TestAccountingExact pins the invariant the streaming plane is built on:
// after cancellation, every offered id is accounted as delivered or dropped.
func TestAccountingExact(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.Subscribe(8)
	if err != nil {
		t.Fatal(err)
	}
	var consumed uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for range s.C() {
			consumed++
			if consumed%3 == 0 {
				time.Sleep(50 * time.Microsecond) // a deliberately slow reader
			}
		}
	}()
	batch := make([]uint64, 17)
	for round := 0; round < 300; round++ {
		for i := range batch {
			batch[i] = uint64(round*len(batch) + i)
		}
		h.Publish(batch)
	}
	s.Cancel()
	wg.Wait()
	offered, delivered, dropped := s.Offered(), s.Delivered(), s.Dropped()
	if offered != uint64(300*len(batch)) {
		t.Fatalf("offered %d, want %d", offered, 300*len(batch))
	}
	if delivered+dropped != offered {
		t.Fatalf("accounting leak: offered %d != delivered %d + dropped %d",
			offered, delivered, dropped)
	}
	if consumed > delivered {
		t.Fatalf("consumed %d more than delivered %d", consumed, delivered)
	}
}

// TestDecimation pins SubscribeEvery: exactly one in k offered ids reaches
// the subscriber, the rest are counted as filtered, and the cancellation
// accounting identity gains the filtered term.
func TestDecimation(t *testing.T) {
	h := New()
	defer h.Close()
	if _, err := h.SubscribeEvery(8, 0); err == nil {
		t.Error("every=0 should fail")
	}
	if _, err := h.SubscribeEvery(8, MaxDecimation+1); err == nil {
		t.Error("every beyond MaxDecimation should fail")
	}
	const every = 5
	s, err := h.SubscribeEvery(1024, every)
	if err != nil {
		t.Fatal(err)
	}
	if s.Every() != every {
		t.Fatalf("Every() = %d", s.Every())
	}
	const total = 1000
	batch := make([]uint64, 20)
	for round := 0; round < total/len(batch); round++ {
		for i := range batch {
			batch[i] = uint64(round*len(batch) + i + 1)
		}
		h.Publish(batch)
	}
	// The retained ids are exactly every 5th of the offered sequence.
	var got []uint64
	deadline := time.After(5 * time.Second)
	for len(got) < total/every {
		select {
		case id := <-s.C():
			got = append(got, id)
		case <-deadline:
			t.Fatalf("received %d decimated ids, want %d", len(got), total/every)
		}
	}
	for i, id := range got {
		if want := uint64((i + 1) * every); id != want {
			t.Fatalf("decimated element %d = %d, want %d", i, id, want)
		}
	}
	s.Cancel()
	if s.Offered() != total {
		t.Fatalf("offered %d, want %d", s.Offered(), total)
	}
	if s.Filtered() != total-total/every {
		t.Fatalf("filtered %d, want %d", s.Filtered(), total-total/every)
	}
	if sum := s.Delivered() + s.Dropped() + s.Filtered(); sum != s.Offered() {
		t.Fatalf("accounting leak: delivered %d + dropped %d + filtered %d != offered %d",
			s.Delivered(), s.Dropped(), s.Filtered(), s.Offered())
	}
}

// TestCancelFlushesBuffered pins the shutdown hand-off: ids buffered when
// Cancel lands are flushed into the delivery channel as far as it has
// room, so a consumer that kept up loses nothing to a close.
func TestCancelFlushesBuffered(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.Subscribe(64)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, 32)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	h.Publish(ids)
	s.Cancel()
	var got int
	for range s.C() {
		got++
	}
	if uint64(got) != s.Delivered() {
		t.Fatalf("read %d, delivered %d", got, s.Delivered())
	}
	if s.Delivered()+s.Dropped() != s.Offered() {
		t.Fatalf("accounting leak after cancel flush: %d + %d != %d",
			s.Delivered(), s.Dropped(), s.Offered())
	}
	if got == 0 {
		t.Fatal("cancel flushed nothing despite ample channel capacity")
	}
}

// TestPublishNeverBlocks attaches a subscriber that never reads and checks
// that Publish returns promptly regardless.
func TestPublishNeverBlocks(t *testing.T) {
	h := New()
	defer h.Close()
	if _, err := h.Subscribe(1); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		batch := make([]uint64, 256)
		for i := 0; i < 2000; i++ {
			h.Publish(batch)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}
}

func TestCancelIdempotentAndUnsubscribe(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	s.Cancel()
	h.Unsubscribe(s)
	h.Unsubscribe(nil)
	if h.NumSubscribers() != 0 {
		t.Fatalf("subscribers after cancel: %d", h.NumSubscribers())
	}
	select {
	case <-s.Done():
	default:
		t.Fatal("Done not closed after Cancel")
	}
	if _, ok := <-s.C(); ok {
		t.Fatal("delivery channel not closed after Cancel")
	}
	// Publishing to a hub with no subscribers is a no-op.
	h.Publish([]uint64{1})
	if s.Offered() != 0 {
		t.Fatal("cancelled subscription still offered ids")
	}
}

func TestHubClose(t *testing.T) {
	h := New()
	a, err := h.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	h.Close() // idempotent
	for _, s := range []*Subscription{a, b} {
		if _, ok := <-s.C(); ok {
			t.Fatal("channel open after hub close")
		}
	}
	if _, err := h.Subscribe(4); err != ErrHubClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrHubClosed", err)
	}
	if h.NumSubscribers() != 0 {
		t.Fatalf("subscribers after close: %d", h.NumSubscribers())
	}
}

// TestConcurrentChurn races Publish against Subscribe/Cancel churn and
// consumer reads; the race detector is the assertion.
func TestConcurrentChurn(t *testing.T) {
	h := New()
	defer h.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			batch := []uint64{uint64(g), uint64(g) + 1}
			for {
				select {
				case <-stop:
					return
				default:
					h.Publish(batch)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s, err := h.Subscribe(8)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 0; j < 10; j++ {
					select {
					case <-s.C():
					case <-time.After(time.Millisecond):
					}
				}
				s.Cancel()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if _, err := h.Subscribe(4); err != nil {
		t.Fatalf("hub unusable after churn: %v", err)
	}
	h.Stats()
}

func TestStatsSnapshot(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish([]uint64{1, 2, 3})
	st := h.Stats()
	if len(st) != 1 {
		t.Fatalf("stats rows = %d", len(st))
	}
	if st[0].ID != s.ID() || st[0].Capacity != 16 || st[0].Offered != 3 {
		t.Fatalf("stats = %+v", st[0])
	}
}

// TestSubscribeEveryFreshPhase pins the decimation window of a fresh
// subscription: the first delivery happens on exactly the every-th offered
// draw, never earlier. The daemon's reconnect path relies on this — a
// re-issued subscription restarting its window can only stretch the
// spacing between deliveries, never compress it below every offers.
func TestSubscribeEveryFreshPhase(t *testing.T) {
	h := New()
	defer h.Close()
	const every = 4
	s, err := h.SubscribeEvery(16, every)
	if err != nil {
		t.Fatal(err)
	}
	h.Publish([]uint64{1, 2, 3}) // every-1 offers: all filtered
	select {
	case id := <-s.C():
		t.Fatalf("delivery of %d before the %d-th offer", id, every)
	case <-time.After(50 * time.Millisecond):
	}
	h.Publish([]uint64{4})
	select {
	case id := <-s.C():
		if id != 4 {
			t.Fatalf("first delivery %d, want the %d-th offer (4)", id, every)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery on the every-th offer")
	}
	if f, d := s.Filtered(), s.Delivered(); f != every-1 || d != 1 {
		t.Fatalf("filtered %d delivered %d, want %d and 1", f, d, every-1)
	}
}

// TestRateCapTokenBucket drives the delivery rate cap on a fake clock: a
// rate-R subscription passes at most R ids per publish burst, refills R
// tokens per elapsed second, never banks more than one second of burst, and
// keeps the accounting identity exact with capped in the ledger.
func TestRateCapTokenBucket(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.SubscribeWith(SubOptions{Capacity: 256, RatePerSec: 10})
	if err != nil {
		t.Fatal(err)
	}
	var clock int64 = 5e9
	s.mu.Lock()
	s.now = func() int64 { return clock }
	s.lastRefill = clock
	s.tokens = 10 // full bucket, as at birth
	s.mu.Unlock()

	batch := func(n int, base uint64) []uint64 {
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = base + uint64(i)
		}
		return ids
	}
	// Burst one: the full bucket admits exactly rate ids.
	h.Publish(batch(25, 100))
	if got := s.Capped(); got != 15 {
		t.Fatalf("capped %d after first burst, want 15", got)
	}
	// Same instant: the bucket is empty, everything is capped.
	h.Publish(batch(5, 200))
	if got := s.Capped(); got != 20 {
		t.Fatalf("capped %d after empty-bucket burst, want 20", got)
	}
	// One second later: exactly one second's refill.
	clock += 1e9
	h.Publish(batch(25, 300))
	if got := s.Capped(); got != 35 {
		t.Fatalf("capped %d after refilled burst, want 35", got)
	}
	// A long idle stretch banks only one second of burst.
	clock += 60e9
	h.Publish(batch(25, 400))
	if got := s.Capped(); got != 50 {
		t.Fatalf("capped %d after idle stretch, want 50", got)
	}
	// Half a second buys half a bucket.
	clock += 5e8
	h.Publish(batch(25, 500))
	if got := s.Capped(); got != 70 {
		t.Fatalf("capped %d after half-second refill, want 70", got)
	}

	if got := s.Rate(); got != 10 {
		t.Fatalf("Rate() = %d, want 10", got)
	}
	s.Cancel()
	drained := 0
	for range s.C() {
		drained++
	}
	offered, delivered, dropped := s.Offered(), s.Delivered(), s.Dropped()
	if offered != 105 {
		t.Fatalf("offered %d, want 105", offered)
	}
	if delivered != uint64(drained) {
		t.Fatalf("delivered %d but drained %d", delivered, drained)
	}
	if offered != delivered+dropped+s.Filtered()+s.Capped() {
		t.Fatalf("accounting leak: offered %d != delivered %d + dropped %d + filtered %d + capped %d",
			offered, delivered, dropped, s.Filtered(), s.Capped())
	}
	if want := offered - s.Capped(); delivered+dropped != want {
		t.Fatalf("delivered+dropped = %d, want %d (everything the cap admitted)", delivered+dropped, want)
	}
}

// TestRateCapComposesWithDecimation: decimation thins first, then the
// bucket meters what survives — so a 1-in-5 subscription at rate 10 passes
// 10 of 50 offered in one instant, filtering 40 and capping nothing until
// the thinned stream itself exceeds the rate.
func TestRateCapComposesWithDecimation(t *testing.T) {
	h := New()
	defer h.Close()
	s, err := h.SubscribeWith(SubOptions{Capacity: 64, Every: 5, RatePerSec: 4})
	if err != nil {
		t.Fatal(err)
	}
	var clock int64 = 9e9
	s.mu.Lock()
	s.now = func() int64 { return clock }
	s.lastRefill = clock
	s.tokens = 4
	s.mu.Unlock()
	ids := make([]uint64, 50)
	for i := range ids {
		ids[i] = uint64(i + 1)
	}
	h.Publish(ids)
	if got := s.Filtered(); got != 40 {
		t.Fatalf("filtered %d, want 40", got)
	}
	// 10 survived the thinning; the bucket admitted 4 and capped 6.
	if got := s.Capped(); got != 6 {
		t.Fatalf("capped %d, want 6", got)
	}
}

// TestInitialSeenPhase pins the reconnect contract: a subscription seeded
// with the previous incarnation's Seen() continues the thinning window
// instead of restarting it, so the stitched stream never stretches the
// delivery spacing beyond Every.
func TestInitialSeenPhase(t *testing.T) {
	h := New()
	defer h.Close()
	// A fresh 1-in-4 subscription, offered 6 ids, delivers draws 4 and has
	// seen 2 of the next window.
	first, err := h.SubscribeWith(SubOptions{Capacity: 16, Every: 4})
	if err != nil {
		t.Fatal(err)
	}
	h.Publish([]uint64{1, 2, 3, 4, 5, 6})
	if got := first.Seen(); got != 2 {
		t.Fatalf("Seen() = %d after 6 offers at every=4, want 2", got)
	}
	first.Cancel()

	// The successor picks up mid-window: two more offers complete it.
	second, err := h.SubscribeWith(SubOptions{Capacity: 16, Every: 4, InitialSeen: first.Seen()})
	if err != nil {
		t.Fatal(err)
	}
	h.Publish([]uint64{7})
	if got := second.Filtered(); got != 1 {
		t.Fatalf("filtered %d after one offer mid-window, want 1", got)
	}
	h.Publish([]uint64{8})
	select {
	case id := <-second.C():
		if id != 8 {
			t.Fatalf("delivered %d, want 8 (the 4th of the stitched window)", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery on the offer completing the stitched window")
	}
	second.Cancel()

	// InitialSeen is taken modulo Every, so a stale larger count behaves
	// like its remainder; phase every-1 delivers on the very first offer.
	third, err := h.SubscribeWith(SubOptions{Capacity: 16, Every: 4, InitialSeen: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := third.Seen(); got != 3 {
		t.Fatalf("Seen() = %d for InitialSeen 7 at every=4, want 3", got)
	}
	h.Publish([]uint64{9})
	select {
	case id := <-third.C():
		if id != 9 {
			t.Fatalf("delivered %d, want 9", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery for a phase seeded one short of the interval")
	}
}
