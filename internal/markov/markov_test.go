package markov

import (
	"math"
	"testing"

	"nodesampling/internal/core"
	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

func zipfP(n int, alpha float64) []float64 {
	w := stream.ZipfPMF(n, alpha)
	sum := 0.0
	for _, v := range w {
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func mustChain(t *testing.T, p []float64, c int) *Chain {
	t.Helper()
	a, r, err := PaperFamilies(p)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChain(p, a, r, c)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestNewChainValidation(t *testing.T) {
	p := []float64{0.5, 0.5}
	a := []float64{1, 1}
	r := []float64{0.5, 0.5}
	if _, err := NewChain(nil, nil, nil, 1); err == nil {
		t.Error("empty p should fail")
	}
	if _, err := NewChain(p, a[:1], r, 1); err == nil {
		t.Error("mismatched a should fail")
	}
	if _, err := NewChain(p, a, r, 0); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewChain(p, a, r, 3); err == nil {
		t.Error("c>n should fail")
	}
	if _, err := NewChain([]float64{0.3, 0.3}, a, r, 1); err == nil {
		t.Error("non-normalised p should fail")
	}
	if _, err := NewChain(p, []float64{2, 1}, r, 1); err == nil {
		t.Error("a>1 should fail")
	}
	if _, err := NewChain(p, a, []float64{0, 1}, 1); err == nil {
		t.Error("r=0 should fail")
	}
	// State-space blow-up guard.
	big := make([]float64, 40)
	ba := make([]float64, 40)
	br := make([]float64, 40)
	for i := range big {
		big[i] = 1.0 / 40
		ba[i] = 1
		br[i] = 1
	}
	if _, err := NewChain(big, ba, br, 20); err == nil {
		t.Error("C(40,20) states should exceed the limit")
	}
}

func TestEnumerationCount(t *testing.T) {
	cases := []struct{ n, c, want int }{
		{4, 2, 6}, {5, 3, 10}, {6, 1, 6}, {6, 6, 1}, {10, 3, 120},
	}
	for _, cse := range cases {
		ch := mustChain(t, zipfP(cse.n, 1), cse.c)
		if got := ch.NumStates(); got != cse.want {
			t.Errorf("C(%d,%d) enumerated %d states, want %d", cse.n, cse.c, got, cse.want)
		}
		// All states distinct, sorted, of size c.
		seen := map[string]bool{}
		for _, s := range ch.States() {
			if len(s) != cse.c {
				t.Fatalf("state %v has size %d", s, len(s))
			}
			for i := 1; i < len(s); i++ {
				if s[i] <= s[i-1] {
					t.Fatalf("state %v not strictly sorted", s)
				}
			}
			k := subsetKey(s)
			if seen[k] {
				t.Fatalf("duplicate state %v", s)
			}
			seen[k] = true
		}
	}
}

func TestTransitionMatrixIsStochastic(t *testing.T) {
	ch := mustChain(t, zipfP(7, 2), 3)
	P := ch.TransitionMatrix()
	for i, row := range P {
		sum := 0.0
		for _, v := range row {
			if v < -1e-15 {
				t.Fatalf("negative transition probability %v in row %d", v, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

// TestTheorem3Reversibility: the chain is reversible under the closed-form
// stationary distribution, for the paper's families AND for arbitrary
// positive (a, r) families — exactly the statement of Theorem 3.
func TestTheorem3Reversibility(t *testing.T) {
	p := zipfP(6, 1.5)
	// Paper families.
	ch := mustChain(t, p, 2)
	pi := ch.TheoreticalStationary()
	if d := ch.ReversibilityDefect(pi); d > 1e-14 {
		t.Errorf("paper families: reversibility defect %v", d)
	}
	// Arbitrary families.
	a := []float64{0.9, 0.5, 0.7, 0.2, 1, 0.3}
	r := []float64{0.1, 0.4, 0.05, 0.8, 0.33, 0.27}
	ch2, err := NewChain(p, a, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	pi2 := ch2.TheoreticalStationary()
	if d := ch2.ReversibilityDefect(pi2); d > 1e-14 {
		t.Errorf("arbitrary families: reversibility defect %v", d)
	}
}

// TestTheorem3StationaryMatchesSolver: the closed form of Theorem 3 agrees
// with the numerically solved stationary distribution.
func TestTheorem3StationaryMatchesSolver(t *testing.T) {
	for _, cse := range []struct {
		n, c  int
		alpha float64
	}{
		{5, 2, 1}, {6, 3, 2}, {8, 2, 0.5}, {7, 4, 3},
	} {
		ch := mustChain(t, zipfP(cse.n, cse.alpha), cse.c)
		solved, err := ch.Stationary()
		if err != nil {
			t.Fatal(err)
		}
		theory := ch.TheoreticalStationary()
		for i := range theory {
			if math.Abs(solved[i]-theory[i]) > 1e-9 {
				t.Fatalf("n=%d c=%d state %d: solver %v vs theory %v",
					cse.n, cse.c, i, solved[i], theory[i])
			}
		}
	}
}

func TestSolverMatchesPowerIteration(t *testing.T) {
	ch := mustChain(t, zipfP(6, 2), 3)
	solved, err := ch.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	iterated, err := ch.PowerIteration(1e-13, 500000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range solved {
		if math.Abs(solved[i]-iterated[i]) > 1e-8 {
			t.Fatalf("state %d: direct %v vs power %v", i, solved[i], iterated[i])
		}
	}
}

func TestPowerIterationValidation(t *testing.T) {
	ch := mustChain(t, zipfP(4, 1), 2)
	if _, err := ch.PowerIteration(0, 100); err == nil {
		t.Error("tol=0 should fail")
	}
	if _, err := ch.PowerIteration(1e-12, 0); err == nil {
		t.Error("maxIter=0 should fail")
	}
	if _, err := ch.PowerIteration(1e-30, 1); err == nil {
		t.Error("unreachable tolerance should report non-convergence")
	}
}

// TestTheorem4UniformOccupancy is the central result: with the paper's
// families the stationary distribution is uniform over states and every id
// occupies the memory with probability exactly c/n, regardless of how
// biased the input distribution is.
func TestTheorem4UniformOccupancy(t *testing.T) {
	for _, cse := range []struct {
		n, c  int
		alpha float64
	}{
		{6, 2, 4},   // heavy bias
		{8, 3, 2},   //
		{10, 4, 1},  //
		{5, 5, 2},   // memory holds everything
		{9, 1, 0.5}, // single-slot memory
	} {
		ch := mustChain(t, zipfP(cse.n, cse.alpha), cse.c)
		pi, err := ch.Stationary()
		if err != nil {
			t.Fatal(err)
		}
		wantPi := 1 / float64(ch.NumStates())
		for i, v := range pi {
			if math.Abs(v-wantPi) > 1e-9 {
				t.Fatalf("n=%d c=%d: π_%d = %v, want uniform %v", cse.n, cse.c, i, v, wantPi)
			}
		}
		gamma := ch.OccupancyProbabilities(pi)
		want := float64(cse.c) / float64(cse.n)
		for ell, g := range gamma {
			if math.Abs(g-want) > 1e-9 {
				t.Fatalf("n=%d c=%d: γ_%d = %v, want c/n = %v", cse.n, cse.c, ell, g, want)
			}
		}
	}
}

// TestNonPaperFamiliesBreakUniformity: with a constant insertion family
// (a_j = 1) the stationary occupancy tracks the input bias — the ablation
// justifying the a_j = min(p)/p_j choice.
func TestNonPaperFamiliesBreakUniformity(t *testing.T) {
	p := zipfP(6, 2)
	n := len(p)
	a := make([]float64, n)
	r := make([]float64, n)
	for i := range a {
		a[i] = 1
		r[i] = 1 / float64(n)
	}
	ch, err := NewChain(p, a, r, 2)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ch.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	gamma := ch.OccupancyProbabilities(pi)
	// The most frequent id must now be strictly over-represented.
	want := float64(2) / float64(n)
	if gamma[0] < want*1.5 {
		t.Fatalf("γ_0 = %v with a_j = 1; expected well above c/n = %v", gamma[0], want)
	}
	if gamma[n-1] > want {
		t.Fatalf("γ_last = %v with a_j = 1; expected below c/n = %v", gamma[n-1], want)
	}
}

// TestGammaSumsToC: Σ_ℓ γ_ℓ = c for any stationary distribution (the memory
// always holds exactly c ids).
func TestGammaSumsToC(t *testing.T) {
	p := zipfP(7, 1)
	a := []float64{1, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4}
	r := []float64{1, 2, 3, 4, 5, 6, 7}
	ch, err := NewChain(p, a, r, 3)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ch.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	gamma := ch.OccupancyProbabilities(pi)
	sum := 0.0
	for _, g := range gamma {
		sum += g
	}
	if math.Abs(sum-3) > 1e-9 {
		t.Fatalf("Σγ = %v, want c = 3", sum)
	}
}

func TestPaperFamilies(t *testing.T) {
	p := []float64{0.5, 0.25, 0.25, 0}
	a, r, err := PaperFamilies(p)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0.5 || a[1] != 1 || a[2] != 1 {
		t.Errorf("a = %v", a)
	}
	if a[3] != 1 {
		t.Errorf("zero-probability id should get a=1, got %v", a[3])
	}
	for _, v := range r {
		if v != 0.25 {
			t.Errorf("r = %v, want all 1/n", r)
		}
	}
	if _, _, err := PaperFamilies(nil); err == nil {
		t.Error("empty p should fail")
	}
	if _, _, err := PaperFamilies([]float64{0, 0}); err == nil {
		t.Error("all-zero p should fail")
	}
}

// TestSimulationAgreesWithChain closes the loop between the analysis and
// the implementation: the empirical memory-occupancy frequencies of the
// actual Omniscient sampler converge to the chain's exact γ_ℓ = c/n.
func TestSimulationAgreesWithChain(t *testing.T) {
	const n, c, m = 8, 3, 300000
	pmf := stream.ZipfPMF(n, 2)
	src, err := stream.NewCategorical(pmf, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	om, err := core.NewOmniscient(c, src, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	occupancy := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		om.Process(src.Next())
		if i >= m/10 { // discard burn-in
			for _, id := range om.Memory() {
				occupancy.Add(id)
			}
		}
	}
	total := float64(occupancy.Total())
	want := float64(c) / float64(n) // fraction of snapshots containing each id is γ = c/n
	for id := uint64(0); id < n; id++ {
		got := float64(occupancy.Count(id)) / (total / float64(c))
		if math.Abs(got-want) > 0.03 {
			t.Errorf("empirical γ_%d = %v, want %v", id, got, want)
		}
	}
}

func BenchmarkStationary(b *testing.B) {
	p := zipfP(10, 2)
	a, r, err := PaperFamilies(p)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChain(p, a, r, 3) // 120 states
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Stationary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitionMatrix(b *testing.B) {
	p := zipfP(12, 2)
	a, r, err := PaperFamilies(p)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChain(p, a, r, 4) // 495 states
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.TransitionMatrix()
	}
}
