// Package markov implements the exact Markov-chain analysis of Section IV
// of the paper. The chain X tracks the contents of the sampling memory Γ of
// Algorithm 1: its state space is S = {A ⊆ N : |A| = c}, and a transition
// replaces an element i ∈ A by an arriving element j ∉ A with probability
//
//	P_{A,B} = (r_i / Σ_{ℓ∈A} r_ℓ) · p_j · a_j,   A\B = {i}, B\A = {j}.
//
// Theorem 3 states the chain is reversible with stationary distribution
//
//	π_A = (1/K) (Σ_{ℓ∈A} r_ℓ) (Π_{h∈A} p_h·a_h/r_h),
//
// and Theorem 4 derives γ_ℓ = P{ℓ ∈ Γ} = c/n for the families
// a_j = min_i(p_i)/p_j and r_j = 1/n. This package constructs the chain for
// small (n, c), solves for the stationary distribution numerically, and
// exposes the theoretical quantities so tests and the `thm4` experiment can
// verify the theorems exactly.
package markov

import (
	"fmt"
	"math"
)

// Chain is the memory-contents Markov chain for a population of n ids with
// occurrence probabilities p, insertion probabilities a, removal weights r,
// and memory size c.
type Chain struct {
	n, c   int
	p      []float64
	a      []float64
	r      []float64
	states [][]int // sorted c-subsets of [0, n)
	index  map[string]int
}

// MaxStates bounds the state-space size C(n, c) accepted by NewChain; the
// dense linear-algebra solver is cubic in this count.
const MaxStates = 6000

// NewChain validates the parameter families and enumerates the state space.
func NewChain(p, a, r []float64, c int) (*Chain, error) {
	n := len(p)
	if n < 1 {
		return nil, fmt.Errorf("markov: empty probability vector")
	}
	if len(a) != n || len(r) != n {
		return nil, fmt.Errorf("markov: family sizes disagree: |p|=%d |a|=%d |r|=%d", n, len(a), len(r))
	}
	if c < 1 || c > n {
		return nil, fmt.Errorf("markov: memory size c=%d outside [1, %d]", c, n)
	}
	sum := 0.0
	for i, v := range p {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("markov: p[%d] = %v invalid", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return nil, fmt.Errorf("markov: probabilities sum to %v, want 1", sum)
	}
	for i := 0; i < n; i++ {
		if a[i] < 0 || a[i] > 1 || math.IsNaN(a[i]) {
			return nil, fmt.Errorf("markov: a[%d] = %v outside [0,1]", i, a[i])
		}
		if r[i] <= 0 || math.IsNaN(r[i]) {
			return nil, fmt.Errorf("markov: r[%d] = %v must be positive", i, r[i])
		}
	}
	if s := binomial(n, c); s > MaxStates {
		return nil, fmt.Errorf("markov: state space C(%d,%d) = %d exceeds limit %d", n, c, s, MaxStates)
	}
	ch := &Chain{
		n: n, c: c,
		p: append([]float64(nil), p...),
		a: append([]float64(nil), a...),
		r: append([]float64(nil), r...),
	}
	ch.enumerate()
	return ch, nil
}

// binomial returns C(n, c) with saturation above MaxStates+1 to avoid
// overflow during validation.
func binomial(n, c int) int {
	if c < 0 || c > n {
		return 0
	}
	if c > n-c {
		c = n - c
	}
	res := 1
	for i := 0; i < c; i++ {
		res = res * (n - i) / (i + 1)
		if res > MaxStates+1 {
			return MaxStates + 1
		}
	}
	return res
}

// enumerate lists all c-subsets of [0, n) in lexicographic order.
func (ch *Chain) enumerate() {
	ch.index = make(map[string]int)
	cur := make([]int, ch.c)
	for i := range cur {
		cur[i] = i
	}
	for {
		state := append([]int(nil), cur...)
		ch.index[subsetKey(state)] = len(ch.states)
		ch.states = append(ch.states, state)
		// Advance to the next combination.
		i := ch.c - 1
		for i >= 0 && cur[i] == ch.n-ch.c+i {
			i--
		}
		if i < 0 {
			return
		}
		cur[i]++
		for j := i + 1; j < ch.c; j++ {
			cur[j] = cur[j-1] + 1
		}
	}
}

func subsetKey(sorted []int) string {
	b := make([]byte, 0, len(sorted)*3)
	for _, v := range sorted {
		b = append(b, byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// NumStates returns |S| = C(n, c).
func (ch *Chain) NumStates() int { return len(ch.states) }

// States returns a copy of the enumerated states (sorted id lists).
func (ch *Chain) States() [][]int {
	out := make([][]int, len(ch.states))
	for i, s := range ch.states {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// TransitionMatrix builds the dense row-stochastic matrix P.
func (ch *Chain) TransitionMatrix() [][]float64 {
	m := len(ch.states)
	P := make([][]float64, m)
	for i := range P {
		P[i] = make([]float64, m)
	}
	for ai, A := range ch.states {
		rSum := 0.0
		inA := make(map[int]bool, ch.c)
		for _, ell := range A {
			rSum += ch.r[ell]
			inA[ell] = true
		}
		rowOut := 0.0
		for pos, i := range A { // element to evict
			for j := 0; j < ch.n; j++ { // arriving element
				if inA[j] {
					continue
				}
				// B = A \ {i} ∪ {j}
				B := make([]int, 0, ch.c)
				for q, v := range A {
					if q == pos {
						continue
					}
					B = append(B, v)
				}
				B = insertSorted(B, j)
				bi := ch.index[subsetKey(B)]
				pr := (ch.r[i] / rSum) * ch.p[j] * ch.a[j]
				P[ai][bi] += pr
				rowOut += pr
			}
		}
		P[ai][ai] = 1 - rowOut
	}
	return P
}

func insertSorted(s []int, v int) []int {
	i := 0
	for i < len(s) && s[i] < v {
		i++
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Stationary solves π = πP, Σπ = 1 directly by Gaussian elimination with
// partial pivoting on (Pᵀ − I) with the normalisation constraint replacing
// one equation. It returns an error if the system is numerically singular
// (which cannot happen for an irreducible chain with valid parameters).
func (ch *Chain) Stationary() ([]float64, error) {
	P := ch.TransitionMatrix()
	m := len(P)
	// Build M x = b where rows 0..m-2 are (Pᵀ − I) and row m−1 is Σπ = 1.
	M := make([][]float64, m)
	for i := range M {
		M[i] = make([]float64, m+1)
	}
	for i := 0; i < m-1; i++ {
		for j := 0; j < m; j++ {
			M[i][j] = P[j][i]
		}
		M[i][i] -= 1
	}
	for j := 0; j < m; j++ {
		M[m-1][j] = 1
	}
	M[m-1][m] = 1

	for col := 0; col < m; col++ {
		// Partial pivot.
		pivot := col
		for row := col + 1; row < m; row++ {
			if math.Abs(M[row][col]) > math.Abs(M[pivot][col]) {
				pivot = row
			}
		}
		if math.Abs(M[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("markov: singular system at column %d", col)
		}
		M[col], M[pivot] = M[pivot], M[col]
		inv := 1 / M[col][col]
		for row := 0; row < m; row++ {
			if row == col || M[row][col] == 0 {
				continue
			}
			f := M[row][col] * inv
			for j := col; j <= m; j++ {
				M[row][j] -= f * M[col][j]
			}
		}
	}
	pi := make([]float64, m)
	for i := 0; i < m; i++ {
		pi[i] = M[i][m] / M[i][i]
		if pi[i] < 0 && pi[i] > -1e-12 {
			pi[i] = 0
		}
	}
	return pi, nil
}

// PowerIteration computes the stationary distribution iteratively; it exists
// as an independent cross-check of Stationary.
func (ch *Chain) PowerIteration(tol float64, maxIter int) ([]float64, error) {
	if tol <= 0 {
		return nil, fmt.Errorf("markov: tolerance must be positive, got %v", tol)
	}
	if maxIter < 1 {
		return nil, fmt.Errorf("markov: maxIter must be positive, got %d", maxIter)
	}
	P := ch.TransitionMatrix()
	m := len(P)
	pi := make([]float64, m)
	next := make([]float64, m)
	for i := range pi {
		pi[i] = 1 / float64(m)
	}
	for iter := 0; iter < maxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < m; i++ {
			v := pi[i]
			if v == 0 {
				continue
			}
			row := P[i]
			for j := 0; j < m; j++ {
				next[j] += v * row[j]
			}
		}
		diff := 0.0
		for j := 0; j < m; j++ {
			diff += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if diff < tol {
			return pi, nil
		}
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d iterations", maxIter)
}

// TheoreticalStationary evaluates the closed form of Theorem 3:
// π_A ∝ (Σ_{ℓ∈A} r_ℓ)·Π_{h∈A}(p_h·a_h/r_h).
func (ch *Chain) TheoreticalStationary() []float64 {
	pi := make([]float64, len(ch.states))
	total := 0.0
	for i, A := range ch.states {
		rSum := 0.0
		prod := 1.0
		for _, h := range A {
			rSum += ch.r[h]
			prod *= ch.p[h] * ch.a[h] / ch.r[h]
		}
		pi[i] = rSum * prod
		total += pi[i]
	}
	for i := range pi {
		pi[i] /= total
	}
	return pi
}

// ReversibilityDefect returns max over state pairs of
// |π_A·P_{A,B} − π_B·P_{B,A}|, which Theorem 3 says is zero.
func (ch *Chain) ReversibilityDefect(pi []float64) float64 {
	P := ch.TransitionMatrix()
	maxV := 0.0
	for i := range P {
		for j := range P {
			if i == j {
				continue
			}
			if v := math.Abs(pi[i]*P[i][j] - pi[j]*P[j][i]); v > maxV {
				maxV = v
			}
		}
	}
	return maxV
}

// OccupancyProbabilities returns γ_ℓ = Σ_{A ∋ ℓ} π_A for every id ℓ;
// Theorem 4 proves γ_ℓ = c/n for the paper's families.
func (ch *Chain) OccupancyProbabilities(pi []float64) []float64 {
	gamma := make([]float64, ch.n)
	for i, A := range ch.states {
		for _, ell := range A {
			gamma[ell] += pi[i]
		}
	}
	return gamma
}

// PaperFamilies returns the families of Corollary 5 for a given occurrence
// distribution: a_j = min_i(p_i)/p_j (over non-zero p_i) and r_j = 1/n.
func PaperFamilies(p []float64) (a, r []float64, err error) {
	n := len(p)
	if n == 0 {
		return nil, nil, fmt.Errorf("markov: empty probability vector")
	}
	minP := math.Inf(1)
	for _, v := range p {
		if v > 0 && v < minP {
			minP = v
		}
	}
	if math.IsInf(minP, 1) {
		return nil, nil, fmt.Errorf("markov: all probabilities are zero")
	}
	a = make([]float64, n)
	r = make([]float64, n)
	for j := range p {
		if p[j] > 0 {
			a[j] = minP / p[j]
		} else {
			a[j] = 1
		}
		r[j] = 1 / float64(n)
	}
	return a, r, nil
}
