package markov

import (
	"math"
	"testing"
)

func TestStateIndexRoundTrip(t *testing.T) {
	ch := mustChain(t, zipfP(6, 1), 3)
	for i, s := range ch.States() {
		idx, err := ch.StateIndex(s)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("state %v indexed %d, want %d", s, idx, i)
		}
	}
	// Unsorted input must resolve too.
	idx, err := ch.StateIndex([]int{5, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := ch.StateIndex([]int{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if idx != idx2 {
		t.Fatal("unsorted state resolved differently")
	}
}

func TestStateIndexValidation(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	if _, err := ch.StateIndex([]int{0}); err == nil {
		t.Error("wrong size should fail")
	}
	if _, err := ch.StateIndex([]int{0, 5}); err == nil {
		t.Error("out-of-range id should fail")
	}
	if _, err := ch.StateIndex([]int{1, 1}); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestDeltaAt(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	d, err := ch.DeltaAt(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		want := 0.0
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Fatalf("delta[%d] = %v", i, v)
		}
	}
	if _, err := ch.DeltaAt(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := ch.DeltaAt(ch.NumStates()); err == nil {
		t.Error("overflow index should fail")
	}
}

// TestTransientConvergesToStationary: evolving any point mass long enough
// must land on the (uniform) stationary distribution.
func TestTransientConvergesToStationary(t *testing.T) {
	ch := mustChain(t, zipfP(6, 2), 2)
	start, err := ch.AdversarialStart()
	if err != nil {
		t.Fatal(err)
	}
	pi, err := ch.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	late, err := ch.Transient(start, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if d := TV(late, pi); d > 1e-6 {
		t.Fatalf("TV to stationary after 20000 steps = %v", d)
	}
}

func TestTransientZeroStepsIsIdentity(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	start, err := ch.DeltaAt(0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ch.Transient(start, 0)
	if err != nil {
		t.Fatal(err)
	}
	if TV(out, start) != 0 {
		t.Fatal("zero steps changed the distribution")
	}
}

func TestTransientValidation(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	if _, err := ch.Transient([]float64{1}, 3); err == nil {
		t.Error("wrong length should fail")
	}
	bad := make([]float64, ch.NumStates())
	bad[0] = 0.5 // sums to 0.5
	if _, err := ch.Transient(bad, 1); err == nil {
		t.Error("non-normalised distribution should fail")
	}
	good, err := ch.DeltaAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Transient(good, -1); err == nil {
		t.Error("negative steps should fail")
	}
}

// TestMixingProfileMonotone: the TV distance to stationarity decreases
// along checkpoints (monotone for reversible chains started at a point).
func TestMixingProfileMonotone(t *testing.T) {
	ch := mustChain(t, zipfP(7, 2), 3)
	start, err := ch.AdversarialStart()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ch.MixingProfile(start, []int{0, 10, 50, 200, 1000, 5000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(prof); i++ {
		if prof[i] > prof[i-1]+1e-12 {
			t.Fatalf("TV increased along profile: %v", prof)
		}
	}
	if prof[0] < 0.5 {
		t.Fatalf("initial TV %v suspiciously small for a point start", prof[0])
	}
	if prof[len(prof)-1] > 0.01 {
		t.Fatalf("final TV %v did not converge", prof[len(prof)-1])
	}
}

func TestMixingProfileValidation(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	start, err := ch.DeltaAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.MixingProfile(start, []int{5, 5}); err == nil {
		t.Error("non-increasing checkpoints should fail")
	}
	if _, err := ch.MixingProfile(start, []int{-1, 5}); err == nil {
		t.Error("negative checkpoint should fail")
	}
}

// TestMixingTimeBehaviour: mixing takes longer under heavier bias (smaller
// insertion probabilities) and for tighter eps.
func TestMixingTimeBehaviour(t *testing.T) {
	mild := mustChain(t, zipfP(6, 0.5), 2)
	heavy := mustChain(t, zipfP(6, 3), 2)
	tMild, err := mild.MixingTime(0.05, 200000)
	if err != nil {
		t.Fatal(err)
	}
	tHeavy, err := heavy.MixingTime(0.05, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if tHeavy <= tMild {
		t.Fatalf("heavier bias mixed faster: mild %d vs heavy %d", tMild, tHeavy)
	}
	tTight, err := mild.MixingTime(0.005, 200000)
	if err != nil {
		t.Fatal(err)
	}
	if tTight <= tMild {
		t.Fatalf("tighter eps mixed faster: %d vs %d", tTight, tMild)
	}
}

func TestMixingTimeValidation(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	if _, err := ch.MixingTime(0, 100); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := ch.MixingTime(1, 100); err == nil {
		t.Error("eps=1 should fail")
	}
	if _, err := ch.MixingTime(0.1, 0); err == nil {
		t.Error("maxSteps=0 should fail")
	}
	if _, err := ch.MixingTime(1e-9, 1); err == nil {
		t.Error("unreachable eps within 1 step should fail")
	}
}

func TestAdversarialStartIsTopIDs(t *testing.T) {
	ch := mustChain(t, zipfP(6, 2), 2)
	start, err := ch.AdversarialStart()
	if err != nil {
		t.Fatal(err)
	}
	// Zipf probabilities decrease with id, so the adversarial state must be
	// {0, 1}.
	want, err := ch.StateIndex([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range start {
		if i == want && v != 1 {
			t.Fatalf("mass %v on adversarial state", v)
		}
		if i != want && v != 0 {
			t.Fatalf("mass %v on state %d", v, i)
		}
	}
}

// TestSLEMGovernsDecay: the measured TV decay factor between consecutive
// late steps must approach the second eigenvalue modulus.
func TestSLEMGovernsDecay(t *testing.T) {
	ch := mustChain(t, zipfP(6, 2), 2)
	slem, err := ch.SLEM(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !(slem > 0 && slem < 1) {
		t.Fatalf("SLEM = %v outside (0,1)", slem)
	}
	start, err := ch.AdversarialStart()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ch.MixingProfile(start, []int{400, 401})
	if err != nil {
		t.Fatal(err)
	}
	if prof[0] == 0 {
		t.Skip("chain fully mixed before the measurement window")
	}
	ratio := prof[1] / prof[0]
	if math.Abs(ratio-slem) > 0.05 {
		t.Fatalf("late TV decay %v vs SLEM %v", ratio, slem)
	}
}

// TestSLEMOrdersWithBias: heavier input bias shrinks the spectral gap.
func TestSLEMOrdersWithBias(t *testing.T) {
	mild := mustChain(t, zipfP(6, 0.5), 2)
	heavy := mustChain(t, zipfP(6, 3), 2)
	sMild, err := mild.SLEM(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	sHeavy, err := heavy.SLEM(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if sHeavy <= sMild {
		t.Fatalf("heavier bias did not shrink the gap: %v vs %v", sHeavy, sMild)
	}
}

func TestSLEMValidation(t *testing.T) {
	ch := mustChain(t, zipfP(5, 1), 2)
	if _, err := ch.SLEM(0, 1e-9); err == nil {
		t.Error("maxIter=0 should fail")
	}
	if _, err := ch.SLEM(100, 0); err == nil {
		t.Error("tol=0 should fail")
	}
}

func TestTVProperties(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 0.5, 0.5}
	if d := TV(a, b); d != 1 {
		t.Fatalf("TV disjoint = %v, want 1", d)
	}
	if d := TV(a, a); d != 0 {
		t.Fatalf("TV identical = %v, want 0", d)
	}
	if d := TV(a, b); math.Abs(d-TV(b, a)) > 1e-15 {
		t.Fatal("TV not symmetric")
	}
}

func BenchmarkTransientStep(b *testing.B) {
	p := zipfP(10, 2)
	a, r, err := PaperFamilies(p)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChain(p, a, r, 3)
	if err != nil {
		b.Fatal(err)
	}
	start, err := ch.AdversarialStart()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Transient(start, 10); err != nil {
			b.Fatal(err)
		}
	}
}
