package markov

import (
	"fmt"
	"math"
)

// The paper's conclusion announces, as future work, the analysis of the
// sampling service's transient behaviour. This file provides that analysis
// for the exact chain: the distribution of the memory contents after t
// arrivals, its total-variation distance to stationarity, and the mixing
// time — the number of stream elements after which the sampler's memory is
// provably within ε of the uniform stationary regime, whatever the
// adversary chose as the initial memory contents.

// StateIndex returns the index of the state holding exactly the given ids
// (need not be sorted). It errors if the set is not a valid state.
func (ch *Chain) StateIndex(ids []int) (int, error) {
	if len(ids) != ch.c {
		return 0, fmt.Errorf("markov: state must hold %d ids, got %d", ch.c, len(ids))
	}
	sorted := append([]int(nil), ids...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i, v := range sorted {
		if v < 0 || v >= ch.n {
			return 0, fmt.Errorf("markov: id %d outside population [0,%d)", v, ch.n)
		}
		if i > 0 && sorted[i] == sorted[i-1] {
			return 0, fmt.Errorf("markov: duplicate id %d in state", v)
		}
	}
	idx, ok := ch.index[subsetKey(sorted)]
	if !ok {
		return 0, fmt.Errorf("markov: state %v not found", sorted)
	}
	return idx, nil
}

// DeltaAt returns the point distribution concentrated on the given state
// index — the transient analysis' initial condition.
func (ch *Chain) DeltaAt(state int) ([]float64, error) {
	if state < 0 || state >= len(ch.states) {
		return nil, fmt.Errorf("markov: state index %d outside [0,%d)", state, len(ch.states))
	}
	pi := make([]float64, len(ch.states))
	pi[state] = 1
	return pi, nil
}

// Transient evolves the distribution `start` for `steps` arrivals and
// returns π_steps = start · P^steps.
func (ch *Chain) Transient(start []float64, steps int) ([]float64, error) {
	if err := ch.validateDistribution(start); err != nil {
		return nil, err
	}
	if steps < 0 {
		return nil, fmt.Errorf("markov: negative step count %d", steps)
	}
	P := ch.TransitionMatrix()
	cur := append([]float64(nil), start...)
	next := make([]float64, len(cur))
	for t := 0; t < steps; t++ {
		stepDistribution(P, cur, next)
		cur, next = next, cur
	}
	return cur, nil
}

func stepDistribution(P [][]float64, cur, next []float64) {
	for j := range next {
		next[j] = 0
	}
	for i, v := range cur {
		if v == 0 {
			continue
		}
		row := P[i]
		for j, p := range row {
			if p != 0 {
				next[j] += v * p
			}
		}
	}
}

func (ch *Chain) validateDistribution(d []float64) error {
	if len(d) != len(ch.states) {
		return fmt.Errorf("markov: distribution over %d states, want %d", len(d), len(ch.states))
	}
	sum := 0.0
	for i, v := range d {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("markov: entry %d is %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("markov: distribution sums to %v", sum)
	}
	return nil
}

// TV returns the total-variation distance (1/2)·Σ|a−b| between two
// distributions over the state space.
func TV(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d / 2
}

// MixingProfile returns the total-variation distance to the stationary
// distribution after each checkpoint (an increasing list of step counts),
// starting from `start`.
func (ch *Chain) MixingProfile(start []float64, checkpoints []int) ([]float64, error) {
	if err := ch.validateDistribution(start); err != nil {
		return nil, err
	}
	for i := 1; i < len(checkpoints); i++ {
		if checkpoints[i] <= checkpoints[i-1] {
			return nil, fmt.Errorf("markov: checkpoints must increase, got %v", checkpoints)
		}
	}
	if len(checkpoints) > 0 && checkpoints[0] < 0 {
		return nil, fmt.Errorf("markov: negative checkpoint %d", checkpoints[0])
	}
	target, err := ch.Stationary()
	if err != nil {
		return nil, err
	}
	P := ch.TransitionMatrix()
	cur := append([]float64(nil), start...)
	next := make([]float64, len(cur))
	out := make([]float64, len(checkpoints))
	t := 0
	for ci, cp := range checkpoints {
		for ; t < cp; t++ {
			stepDistribution(P, cur, next)
			cur, next = next, cur
		}
		out[ci] = TV(cur, target)
	}
	return out, nil
}

// MixingTime returns the smallest number of arrivals after which the
// worst-case initial memory is within eps total variation of stationarity.
// The worst case is taken over all point-mass initial states; a tight upper
// bound on that maximum is obtained by evolving every initial state at
// once, which is O(states²) per step — keep the chain small. maxSteps
// bounds the search.
func (ch *Chain) MixingTime(eps float64, maxSteps int) (int, error) {
	if !(eps > 0 && eps < 1) {
		return 0, fmt.Errorf("markov: eps must be in (0,1), got %v", eps)
	}
	if maxSteps < 1 {
		return 0, fmt.Errorf("markov: maxSteps must be positive, got %d", maxSteps)
	}
	target, err := ch.Stationary()
	if err != nil {
		return 0, err
	}
	P := ch.TransitionMatrix()
	m := len(P)
	// rows[i] = distribution after t steps starting from state i; evolving
	// all of them together is exactly computing P^t row by row.
	rows := make([][]float64, m)
	next := make([][]float64, m)
	for i := range rows {
		rows[i] = make([]float64, m)
		rows[i][i] = 1
		next[i] = make([]float64, m)
	}
	for t := 1; t <= maxSteps; t++ {
		worst := 0.0
		for i := range rows {
			stepDistribution(P, rows[i], next[i])
			rows[i], next[i] = next[i], rows[i]
			if d := TV(rows[i], target); d > worst {
				worst = d
			}
		}
		if worst < eps {
			return t, nil
		}
	}
	return 0, fmt.Errorf("markov: not mixed within %d steps (eps=%v)", maxSteps, eps)
}

// SLEM estimates the second-largest eigenvalue modulus of the transition
// matrix by power iteration on the subspace orthogonal to the constant
// right eigenvector (vectors with zero sum stay zero-sum under μ → μP).
// For the reversible chain of Theorem 3 the asymptotic convergence rate of
// the sampler's memory distribution is exactly SLEM^t, and 1 − SLEM is the
// spectral gap governing the mixing times reported by MixingTime.
func (ch *Chain) SLEM(maxIter int, tol float64) (float64, error) {
	if maxIter < 1 {
		return 0, fmt.Errorf("markov: maxIter must be positive, got %d", maxIter)
	}
	if tol <= 0 {
		return 0, fmt.Errorf("markov: tolerance must be positive, got %v", tol)
	}
	P := ch.TransitionMatrix()
	m := len(P)
	if m < 2 {
		return 0, nil // a single state is already stationary
	}
	// Zero-sum start vector with deterministic structure.
	x := make([]float64, m)
	for i := range x {
		if i%2 == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	if m%2 == 1 {
		x[m-1] = 0
	}
	next := make([]float64, m)
	prev := 0.0
	for iter := 0; iter < maxIter; iter++ {
		stepDistribution(P, x, next)
		norm := 0.0
		for _, v := range next {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0, nil // start vector happened to be in the kernel
		}
		for i := range next {
			next[i] /= norm
		}
		x, next = next, x
		if iter > 2 && math.Abs(norm-prev) < tol {
			return norm, nil
		}
		prev = norm
	}
	return prev, nil
}

// AdversarialStart returns the point distribution on the state an adversary
// would prefer as the initial memory: the c most frequent ids of the input
// distribution — the slowest state to leave, since frequent ids have the
// smallest insertion probabilities driving their replacement.
func (ch *Chain) AdversarialStart() ([]float64, error) {
	type idp struct {
		id int
		p  float64
	}
	items := make([]idp, ch.n)
	for i := range items {
		items[i] = idp{i, ch.p[i]}
	}
	// Selection sort of the top c by probability (n is small here).
	for i := 0; i < ch.c; i++ {
		best := i
		for j := i + 1; j < ch.n; j++ {
			if items[j].p > items[best].p {
				best = j
			}
		}
		items[i], items[best] = items[best], items[i]
	}
	ids := make([]int, ch.c)
	for i := 0; i < ch.c; i++ {
		ids[i] = items[i].id
	}
	idx, err := ch.StateIndex(ids)
	if err != nil {
		return nil, err
	}
	return ch.DeltaAt(idx)
}
