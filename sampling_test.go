package nodesampling

import (
	"errors"
	"math"
	"testing"

	"nodesampling/internal/metrics"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

func TestHashIDDeterministicAndSpread(t *testing.T) {
	a := HashString("node-a.example.com:4000")
	b := HashString("node-a.example.com:4000")
	c := HashString("node-b.example.com:4000")
	if a != b {
		t.Fatal("HashString not deterministic")
	}
	if a == c {
		t.Fatal("different names collided")
	}
	if HashID([]byte{1, 2, 3}) == HashID([]byte{1, 2, 4}) {
		t.Fatal("near-identical byte inputs collided")
	}
}

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(0); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewSampler(5, WithSketch(0, 5)); err == nil {
		t.Error("bad sketch shape should fail")
	}
	if _, err := NewSampler(5, WithSketchAccuracy(0, 0.5)); err == nil {
		t.Error("bad accuracy should fail")
	}
	if _, err := NewSampler(5, WithSketchAccuracy(0.5, 2)); err == nil {
		t.Error("bad delta should fail")
	}
}

func TestNewOmniscientSamplerValidation(t *testing.T) {
	oracle, err := NewCountingOracle(map[NodeID]uint64{1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewOmniscientSampler(0, oracle); err == nil {
		t.Error("c=0 should fail")
	}
	if _, err := NewOmniscientSampler(3, nil); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := NewCountingOracle(nil); err == nil {
		t.Error("empty counts should fail")
	}
}

func TestSamplerBasicFlow(t *testing.T) {
	s, err := NewSampler(4, WithSeed(1), WithSketch(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Sample(); ok {
		t.Fatal("sample ok before input")
	}
	out := s.Process(42)
	if out != 42 {
		t.Fatalf("first output %d, want the only id 42", out)
	}
	if id, ok := s.Sample(); !ok || id != 42 {
		t.Fatalf("sample = (%d, %v)", id, ok)
	}
	if mem := s.Memory(); len(mem) != 1 || mem[0] != 42 {
		t.Fatalf("memory = %v", mem)
	}
}

func TestSamplerReproducibleWithSeed(t *testing.T) {
	mk := func() []NodeID {
		s, err := NewSampler(5, WithSeed(9), WithSketch(10, 5))
		if err != nil {
			t.Fatal(err)
		}
		in := rng.New(10)
		out := make([]NodeID, 3000)
		for i := range out {
			out[i] = s.Process(NodeID(in.Uint64n(100)))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed samplers diverged at %d", i)
		}
	}
}

func TestSamplersWithoutSeedDiffer(t *testing.T) {
	// Two unseeded samplers should (overwhelmingly) use different seeds.
	a, err := NewSampler(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSampler(5)
	if err != nil {
		t.Fatal(err)
	}
	in := rng.New(11)
	same := 0
	const steps = 2000
	for i := 0; i < steps; i++ {
		id := NodeID(in.Uint64n(50))
		if a.Process(id) == b.Process(id) {
			same++
		}
	}
	if same == steps {
		t.Fatal("unseeded samplers behaved identically")
	}
}

// TestPublicSamplerUnbiasesAttack is the quickstart scenario through the
// public API: a peak attack stream, measured before and after.
func TestPublicSamplerUnbiasesAttack(t *testing.T) {
	const n, m = 500, 120000
	pmf, err := stream.PeakPMF(n, 7, 50000, 50)
	if err != nil {
		t.Fatal(err)
	}
	src, err := stream.NewCategorical(pmf, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSampler(20, WithSeed(22), WithSketch(15, 5))
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	output := metrics.NewHistogram()
	for i := 0; i < m; i++ {
		id := src.Next()
		input.Add(id)
		output.Add(uint64(s.Process(NodeID(id))))
	}
	g, err := metrics.Gain(input, output, n)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.5 {
		t.Fatalf("public sampler gain %v under peak attack", g)
	}
}

func TestOmniscientSamplerWithCountingOracle(t *testing.T) {
	const n, m = 100, 200000
	pmf := stream.ZipfPMF(n, 2)
	src, err := stream.NewCategorical(pmf, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	// Build the oracle from a recorded pass, as a real deployment would.
	recorded := stream.Collect(src, m)
	counts := make(map[NodeID]uint64)
	for _, id := range recorded {
		counts[NodeID(id)]++
	}
	oracle, err := NewCountingOracle(counts)
	if err != nil {
		t.Fatal(err)
	}
	om, err := NewOmniscientSampler(10, oracle, WithSeed(24))
	if err != nil {
		t.Fatal(err)
	}
	input := metrics.NewHistogram()
	output := metrics.NewHistogram()
	for _, id := range recorded {
		input.Add(id)
		output.Add(uint64(om.Process(NodeID(id))))
	}
	g, err := metrics.Gain(input, output, input.Distinct())
	if err != nil {
		t.Fatal(err)
	}
	if g < 0.9 {
		t.Fatalf("omniscient gain %v, want > 0.9", g)
	}
}

func TestAttackEffortMatchesTableI(t *testing.T) {
	l, e, err := AttackEffort(10, 5, 1e-1)
	if err != nil {
		t.Fatal(err)
	}
	if l != 38 || e != 44 {
		t.Fatalf("AttackEffort(10,5,0.1) = (%d, %d), want (38, 44)", l, e)
	}
	if _, _, err := AttackEffort(0, 5, 0.1); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestOracleAdapterRoundTrip(t *testing.T) {
	oracle, err := NewCountingOracle(map[NodeID]uint64{3: 1, 4: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := oracle.Prob(3); math.Abs(p-0.25) > 1e-15 {
		t.Fatalf("Prob(3) = %v", p)
	}
	if p := oracle.MinProb(); math.Abs(p-0.25) > 1e-15 {
		t.Fatalf("MinProb = %v", p)
	}
	if p := oracle.Prob(99); p != 0 {
		t.Fatalf("Prob(unknown) = %v", p)
	}
}

func TestErrorsAreWrappedSensibly(t *testing.T) {
	_, err := NewSampler(5, WithSketch(-1, 2))
	if err == nil || err.Error() == "" {
		t.Fatal("expected descriptive error")
	}
	var zero error
	if errors.Is(err, zero) {
		t.Fatal("error unexpectedly matches nil")
	}
}
