module nodesampling

go 1.24
