package nodesampling

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its artifact through the experiment harness (quick-mode
// workloads, 2 trials — run `cmd/unsbench -run all -trials 100` for the
// full paper-scale regeneration), plus micro-benchmarks of the public API's
// hot paths. Run with:
//
//	go test -bench=. -benchmem .

import (
	"testing"

	"nodesampling/internal/experiments"
	"nodesampling/internal/rng"
	"nodesampling/internal/stream"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	_, registry := experiments.Registry()
	runner, ok := registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Trials: 2, Seed: 1, Workers: 4, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		tbl, err := runner(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkThm4(b *testing.B)   { benchExperiment(b, "thm4") }

func BenchmarkTransient(b *testing.B)       { benchExperiment(b, "transient") }
func BenchmarkAblationMinWise(b *testing.B) { benchExperiment(b, "ablation-minwise") }
func BenchmarkAblationEvict(b *testing.B)   { benchExperiment(b, "ablation-evict") }
func BenchmarkAblationCU(b *testing.B)      { benchExperiment(b, "ablation-cu") }
func BenchmarkAblationChurn(b *testing.B)   { benchExperiment(b, "ablation-churn") }
func BenchmarkGossipOverlay(b *testing.B)   { benchExperiment(b, "gossip") }

// BenchmarkSamplerProcess measures the public knowledge-free sampler's
// per-element cost under the paper's Figure 7 settings (c=10, 10x5 sketch,
// peak-attacked stream over 1000 ids).
func BenchmarkSamplerProcess(b *testing.B) {
	s, err := NewSampler(10, WithSeed(1), WithSketch(10, 5))
	if err != nil {
		b.Fatal(err)
	}
	pmf, err := stream.PeakPMF(1000, 0, 50000, 50)
	if err != nil {
		b.Fatal(err)
	}
	src, err := stream.NewCategorical(pmf, rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	ids := stream.Collect(src, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(NodeID(ids[i&(1<<14-1)]))
	}
}

// BenchmarkSamplerProcessWideSketch uses the paper's strongest defender
// settings (c=50, 250x17 sketch).
func BenchmarkSamplerProcessWideSketch(b *testing.B) {
	s, err := NewSampler(50, WithSeed(1), WithSketch(250, 17))
	if err != nil {
		b.Fatal(err)
	}
	src, err := stream.NewCategorical(stream.UniformPMF(100000), rng.New(2))
	if err != nil {
		b.Fatal(err)
	}
	ids := stream.Collect(src, 1<<14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(NodeID(ids[i&(1<<14-1)]))
	}
}

// BenchmarkServicePush measures the concurrent pipeline's per-element cost.
func BenchmarkServicePush(b *testing.B) {
	s, err := NewSampler(10, WithSeed(1), WithSketch(10, 5))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewService(s, WithInputBuffer(1024))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := svc.Push(NodeID(i % 1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPoolPushBatch measures the sharded pool's batch-ingest throughput on
// the same workload as BenchmarkServicePush (ids cycling over 1000, c=10,
// 10x5 sketch per shard), in batches of half the netgossip wire limit — the
// size a daemon actually digests per hand-off. Small sub-batches are the
// sharding tax: each shard wakes per batch, so the batch size is what
// amortises the scheduler, not just the channel.
func benchPoolPushBatch(b *testing.B, shards int) {
	p, err := NewPool(10, shards, WithSeed(1), WithSketch(10, 5), WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	const batchSize = 2048
	batch := make([]NodeID, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = NodeID((i + j) % 1000)
		}
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPoolPushBatch1(b *testing.B) { benchPoolPushBatch(b, 1) }
func BenchmarkPoolPushBatch4(b *testing.B) { benchPoolPushBatch(b, 4) }
func BenchmarkPoolPushBatch8(b *testing.B) { benchPoolPushBatch(b, 8) }

// benchPoolSubscribeFanout measures ingest throughput with the streaming
// output plane live: subs subscribers (each drained by its own goroutine)
// receive σ′ while the producer pushes batches. subs = 0 is the baseline —
// emission gated off, the draw-free fast path. The per-id cost difference
// against the baseline is the full price of generating, fanning out and
// delivering the output stream.
func benchPoolSubscribeFanout(b *testing.B, subs int) {
	p, err := NewPool(10, 4, WithSeed(1), WithSketch(10, 5), WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	for i := 0; i < subs; i++ {
		sub, err := p.Subscribe(4096)
		if err != nil {
			b.Fatal(err)
		}
		go func() {
			for range sub.C() {
			}
		}()
	}
	const batchSize = 2048
	batch := make([]NodeID, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = NodeID((i + j) % 1000)
		}
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPoolSubscribeFanout0(b *testing.B)  { benchPoolSubscribeFanout(b, 0) }
func BenchmarkPoolSubscribeFanout1(b *testing.B)  { benchPoolSubscribeFanout(b, 1) }
func BenchmarkPoolSubscribeFanout4(b *testing.B)  { benchPoolSubscribeFanout(b, 4) }
func BenchmarkPoolSubscribeFanout16(b *testing.B) { benchPoolSubscribeFanout(b, 16) }

// BenchmarkPoolResize measures the full hand-off latency of one live
// resize — flush barrier, Γ re-partition, sketch merge, worker restart —
// on a warm pool alternating between 4 and 8 shards.
func BenchmarkPoolResize(b *testing.B) {
	p, err := NewPool(25, 4, WithSeed(1), WithSketch(50, 10), WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	batch := make([]NodeID, 2048)
	for i := range batch {
		batch[i] = NodeID(i%1000 + 1)
	}
	for r := 0; r < 16; r++ {
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 8
		if i%2 == 1 {
			n = 4
		}
		if err := p.Resize(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolPushBatchResized is BenchmarkPoolPushBatch8 on a pool that
// reached 8 shards through a live resize instead of construction — the
// post-resize ns/id, pinning that the elastic plane leaves no lasting tax
// on the hot path.
func BenchmarkPoolPushBatchResized(b *testing.B) {
	p, err := NewPool(10, 4, WithSeed(1), WithSketch(10, 5), WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	if err := p.Resize(8); err != nil {
		b.Fatal(err)
	}
	const batchSize = 2048
	batch := make([]NodeID, batchSize)
	b.ResetTimer()
	for i := 0; i < b.N; i += batchSize {
		for j := range batch {
			batch[j] = NodeID((i + j) % 1000)
		}
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPoolSnapshot measures serialising a warm 8-shard pool (the cost
// a daemon pays per -snapshot-interval tick).
func BenchmarkPoolSnapshot(b *testing.B) {
	p, err := NewPool(25, 8, WithSeed(1), WithSketch(50, 10), WithShardBuffer(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = p.Close() }()
	batch := make([]NodeID, 2048)
	for i := range batch {
		batch[i] = NodeID(i%1000 + 1)
	}
	for r := 0; r < 16; r++ {
		if err := p.PushBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceSample measures concurrent sample reads against a live
// pipeline.
func BenchmarkServiceSample(b *testing.B) {
	s, err := NewSampler(10, WithSeed(1), WithSketch(10, 5))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := NewService(s, WithInputBuffer(1024))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = svc.Close() }()
	for i := 0; i < 10000; i++ {
		if err := svc.Push(NodeID(i % 500)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = svc.Sample()
	}
}

// BenchmarkHashID measures the SHA-1 id derivation.
func BenchmarkHashID(b *testing.B) {
	data := []byte("node-042.rack-7.dc-eu-west.example.com:7946")
	var sink NodeID
	for i := 0; i < b.N; i++ {
		sink ^= HashID(data)
	}
	_ = sink
}
