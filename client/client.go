// Package client speaks the unsd daemon's framed bidirectional protocol
// over a single TCP connection: push identifier batches up, subscribe to
// the sampling service's continuous output stream σ′ down, and issue
// sample requests and keepalives in between — the paper's stream-in/
// stream-out service shape without per-sample HTTP round trips.
//
// A Client is safe for concurrent use. Writes are serialised internally; a
// dedicated reader goroutine dispatches stream data, sample responses and
// pongs, so a subscription keeps flowing while other calls are in flight.
//
// Clients dialled with DialOptions.Reconnect survive daemon restarts: when
// the connection drops, the client redials with exponential backoff and
// jitter, re-issues its Subscribe (same capacity and decimation interval)
// on the fresh connection, and keeps the subscription channel open
// throughout — the consumer only observes a gap in the stream. Paired with
// the daemon's -snapshot-path restore, a restart costs neither the
// subscriber nor the sampler's accumulated frequency state.
//
// Typical session:
//
//	c, err := client.DialWithOptions("127.0.0.1:7947", client.DialOptions{Reconnect: true})
//	defer c.Close()
//	out, _ := c.Subscribe(1024)
//	go func() {
//	    for id := range out { use(id) }
//	}()
//	c.PushBatch(ids) // as the overlay gossips them in
package client

import (
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nodesampling"
	"nodesampling/internal/netgossip"
	"nodesampling/internal/rng"
	"nodesampling/internal/subhub"
)

// ErrClosed is returned by calls on a client whose connection has been
// closed (by Close, a server Error frame, or a connection failure — Err
// tells them apart).
var ErrClosed = errors.New("client: connection closed")

// MaxSubscribeCapacity bounds Subscribe's buffer argument: it caps the
// client-side channel allocation (the daemon additionally clamps its own
// buffer to a smaller operational limit).
const MaxSubscribeCapacity = 1 << 20

// MaxSubscribeEvery bounds the decimation interval to the daemon's own
// limit.
const MaxSubscribeEvery = subhub.MaxDecimation

// rpcTimeout bounds how long Sample and Ping wait for their response frame.
const rpcTimeout = 30 * time.Second

// handshakeTimeout bounds both the TCP connect and the TLS handshake of a
// fresh connection, so a black-holed endpoint (SYNs silently dropped) or a
// byte-trickling one cannot pin a dial — or the reconnect supervisor, or a
// Close waiting behind it — for the OS's multi-minute connect timeout.
const handshakeTimeout = 30 * time.Second

// DialOptions configures DialWithOptions. The zero value behaves exactly
// like Dial: one connection, no reconnection.
type DialOptions struct {
	// Reconnect enables automatic redialling after the connection fails:
	// exponential backoff from MinBackoff to MaxBackoff with random jitter
	// (so a daemon restart is not greeted by a synchronised thundering
	// herd), and automatic re-subscription of an active stream.
	Reconnect bool
	// MinBackoff is the first retry delay (default 50ms).
	MinBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// MaxAttempts limits consecutive failed dial attempts before the client
	// gives up and closes permanently. 0 means retry forever (until Close).
	MaxAttempts int
	// TLS, when non-nil, wraps every connection (the initial dial and each
	// reconnect) in a TLS client handshake before any frame is exchanged —
	// the transport the unsd daemon serves under -tls-cert/-tls-key. Supply
	// RootCAs to authenticate the daemon and Certificates when the daemon
	// demands mutual TLS (-tls-client-ca). When ServerName is empty the
	// host part of the dialled address is filled in, like tls.Dial does.
	// The config composes with Reconnect: a restarted daemon is redialled
	// and re-handshaken with the same credentials, and the subscription is
	// re-issued on the freshly authenticated connection.
	TLS *tls.Config
}

func (o DialOptions) withDefaults() DialOptions {
	if o.MinBackoff <= 0 {
		o.MinBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = o.MinBackoff
	}
	return o
}

// taggedToken is a pong response tagged with the read-session generation
// that produced it, so a pong buffered across a reconnect can never be
// mistaken for the current session's answer.
type taggedToken struct {
	token uint64
	gen   uint64
}

// taggedIDs is a sample response tagged the same way.
type taggedIDs struct {
	ids []uint64
	gen uint64
}

// Client is one framed connection to an unsd daemon (transparently
// re-established under DialOptions.Reconnect).
type Client struct {
	addr string
	opts DialOptions

	// Cluster dialling (DialCluster): the full address list and the index
	// of the member currently dialled. A failed redial attempt rotates to
	// the next member, so a down daemon only costs one backoff step before
	// the client rides a healthy one. Guarded by mu after construction.
	addrs   []string
	addrIdx int

	// canRedial is fixed at construction: whether the client knows an
	// address to redial at all (false for New over a raw connection).
	canRedial bool

	wmu sync.Mutex // serialises frame writes

	// rpcMu admits one request/response exchange (Sample or Ping) at a
	// time, so responses need no correlation ids on the wire.
	rpcMu   sync.Mutex
	samplec chan taggedIDs
	pongc   chan taggedToken

	mu       sync.Mutex
	conn     net.Conn                 // current connection; swapped on reconnect
	gen      uint64                   // bumped with every fresh connection (session identity)
	stream   chan nodesampling.NodeID // nil until Subscribe
	subCap   int                      // saved Subscribe arguments for re-subscription
	subEvery int
	subRate  uint32 // saved delivery rate cap (ids/second; 0 uncapped)
	// resumeToken is the daemon's SubAck token for the live subscription;
	// a re-subscription presents it so the server resumes the decimation
	// phase where the old session left off instead of restarting the
	// 1-in-every window.
	resumeToken uint64
	err         error // first fatal error, behind done

	done          chan struct{} // closed when the supervisor exits for good
	closing       atomic.Bool
	closingCh     chan struct{} // closed by Close; unblocks backoff sleeps
	closeOnce     sync.Once
	pingSeq       atomic.Uint64
	streamDropped atomic.Uint64
	reconnects    atomic.Uint64
}

// Dial connects to an unsd stream listener.
func Dial(addr string) (*Client, error) {
	return DialWithOptions(addr, DialOptions{})
}

// DialWithOptions connects to an unsd stream listener with explicit
// resilience and transport options. The initial dial — TLS handshake
// included when DialOptions.TLS is set — is synchronous, so a bad address,
// an unauthentic server certificate or a rejected client certificate fails
// immediately; only established connections are re-dialled.
func DialWithOptions(addr string, opts DialOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := dial(addr, opts)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := newClient(conn)
	c.addr = addr
	c.canRedial = addr != ""
	c.opts = opts
	go c.supervise(conn)
	return c, nil
}

// DialCluster connects to one member of an unsd cluster, trying the given
// stream addresses in order until one answers. Under DialOptions.Reconnect
// a lost connection rotates through the member list on every failed redial
// attempt, so the client rides whichever members are up — any member can
// ingest (batches are routed to their owners internally) and any member
// answers Sample over the whole cluster, so members are interchangeable
// endpoints.
func DialCluster(addrs []string, opts DialOptions) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no cluster addresses")
	}
	opts = opts.withDefaults()
	var conn net.Conn
	var err error
	idx := -1
	for i, a := range addrs {
		if conn, err = dial(a, opts); err == nil {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("client: dial cluster %v: %w", addrs, err)
	}
	c := newClient(conn)
	c.addr = addrs[idx]
	c.addrs = append([]string(nil), addrs...)
	c.addrIdx = idx
	c.canRedial = true
	c.opts = opts
	go c.supervise(conn)
	return c, nil
}

// currentAddr reads the address the next dial should use.
func (c *Client) currentAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// rotateAddr advances to the next cluster member after a failed dial
// attempt; single-address clients keep their one address.
func (c *Client) rotateAddr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.addrs) > 1 {
		c.addrIdx = (c.addrIdx + 1) % len(c.addrs)
		c.addr = c.addrs[c.addrIdx]
	}
}

// dial establishes one transport connection to addr, completing the TLS
// handshake up front when opts.TLS is set: a misconfigured, unauthentic or
// plaintext endpoint fails the dial loudly instead of poisoning the framed
// protocol with ciphertext. An empty ServerName is filled from the dialled
// host, like tls.Dial does.
func dial(addr string, opts DialOptions) (net.Conn, error) {
	conn, err := (&net.Dialer{Timeout: handshakeTimeout}).Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if opts.TLS == nil {
		return conn, nil
	}
	cfg := opts.TLS
	if cfg.ServerName == "" {
		if host, _, err := net.SplitHostPort(addr); err == nil {
			cfg = cfg.Clone()
			cfg.ServerName = host
		}
	}
	tconn := tls.Client(conn, cfg)
	_ = tconn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := tconn.Handshake(); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("tls handshake: %w", err)
	}
	_ = tconn.SetDeadline(time.Time{})
	return tconn, nil
}

// New wraps an established connection (any net.Conn speaking the framed
// protocol). The client owns the connection from this point. A client
// built from a raw connection has no address to redial, so it never
// reconnects.
func New(conn net.Conn) *Client {
	c := newClient(conn)
	go c.supervise(conn)
	return c
}

func newClient(conn net.Conn) *Client {
	return &Client{
		conn:      conn,
		gen:       1,
		samplec:   make(chan taggedIDs, 1),
		pongc:     make(chan taggedToken, 1),
		done:      make(chan struct{}),
		closingCh: make(chan struct{}),
	}
}

// supervise owns the connection lifecycle: it runs read sessions and — when
// reconnection is enabled — replaces failed connections until Close or the
// attempt budget is exhausted. Backoff state survives across sessions: a
// connection that dies before proving itself productive (no frame read,
// gone within a backoff window) counts as one more failed attempt rather
// than resetting the clock, so a daemon that accepts-then-drops (full, or
// crash-looping) is retried at backoff pace, not network speed.
func (c *Client) supervise(conn net.Conn) {
	attempts := 0
	backoff := c.opts.MinBackoff
	var err error
	for {
		c.mu.Lock()
		gen := c.gen
		c.mu.Unlock()
		started := time.Now()
		var productive bool
		productive, err = c.readSession(conn, gen)
		if productive || time.Since(started) > c.opts.MaxBackoff {
			attempts, backoff = 0, c.opts.MinBackoff
		}
		if c.closing.Load() || !c.opts.Reconnect || !c.canRedial {
			break
		}
		var rerr error
		conn, attempts, backoff, rerr = c.redial(attempts, backoff)
		if rerr != nil {
			err = rerr
			break
		}
		c.reconnects.Add(1)
	}
	c.finalize(err)
}

// readSession is one connection's read loop: it dispatches every incoming
// frame until the connection fails or the server reports a terminal error.
// gen identifies the session, and every rpc response is delivered tagged
// with it: a pong (or sample response) left buffered when the session dies
// must not be mistaken for the next session's answer — without the tag, a
// Ping straddling a reconnect could consume the previous session's pong
// token, fail the echo check, and condemn a perfectly healthy connection.
// productive reports whether at least one frame was read (the signal that
// the dial reached a live daemon, used to reset the reconnect backoff).
func (c *Client) readSession(conn net.Conn, gen uint64) (productive bool, err error) {
	for {
		f, err := netgossip.ReadFrame(conn)
		if err != nil {
			return productive, err
		}
		productive = true
		switch f.Type {
		case netgossip.FrameStreamData:
			c.dispatchStream(f.IDs)
		case netgossip.FrameSampleResp:
			deliverRPC(c.samplec, taggedIDs{ids: f.IDs, gen: gen})
		case netgossip.FramePong:
			deliverRPC(c.pongc, taggedToken{token: f.Token, gen: gen})
		case netgossip.FrameSubAck:
			// The daemon's subscription acknowledgement: the token redeems
			// this subscription's decimation phase on a reconnect.
			c.mu.Lock()
			c.resumeToken = f.Token
			c.mu.Unlock()
		case netgossip.FrameError:
			return productive, fmt.Errorf("client: server error: %s", f.Msg)
		default:
			return productive, fmt.Errorf("client: unexpected frame type %d from server", f.Type)
		}
	}
}

// deliverRPC hands a response to the single-slot rpc channel, evicting
// whatever is already buffered when it is full — by construction an
// abandoned or stale-session response, which must never be the reason the
// current response is the one dropped. Only one read session runs at a
// time, so the evict-and-retry cannot race another producer; a consumer
// stealing the buffered slot in between just makes the retry succeed.
func deliverRPC[T any](ch chan T, v T) {
	select {
	case ch <- v:
		return
	default:
	}
	select {
	case <-ch:
	default:
	}
	select {
	case ch <- v:
	default:
	}
}

// redial re-establishes the connection with exponential backoff and
// jitter, then re-issues the stream subscription if one is active. It
// returns the new live connection, already installed as c.conn, along with
// the carried-forward attempt count and backoff. Every failure mode — dial
// error, teardown during dial, re-subscribe write failure — spends one
// attempt against MaxAttempts and waits out the backoff.
func (c *Client) redial(attempts int, backoff time.Duration) (net.Conn, int, time.Duration, error) {
	jitter := rng.New(uint64(time.Now().UnixNano()))
	for {
		if attempts > 0 {
			// Full jitter keeps a fleet of clients from re-dialling a
			// restarted daemon in lockstep.
			delay := backoff/2 + time.Duration(jitter.Uint64n(uint64(backoff/2)+1))
			select {
			case <-time.After(delay):
			case <-c.closingCh:
				return nil, attempts, backoff, ErrClosed
			}
			backoff *= 2
			if backoff > c.opts.MaxBackoff {
				backoff = c.opts.MaxBackoff
			}
		}
		if c.closing.Load() {
			return nil, attempts, backoff, ErrClosed
		}
		attempts++
		addr := c.currentAddr()
		conn, err := dial(addr, c.opts)
		if err == nil {
			c.mu.Lock()
			if c.closing.Load() {
				c.mu.Unlock()
				_ = conn.Close()
				return nil, attempts, backoff, ErrClosed
			}
			c.conn = conn
			c.gen++ // a fresh session: rpc responses of the old one are stale
			subscribed, capacity, every := c.stream != nil, c.subCap, c.subEvery
			rate, token := c.subRate, c.resumeToken
			c.mu.Unlock()
			if subscribed {
				// The re-subscription carries the previous session's resume
				// token, so the daemon continues the decimation phase
				// mid-window instead of restarting it.
				if werr := c.write(netgossip.Frame{Type: netgossip.FrameSubscribe, N: uint32(capacity), Every: uint32(every), Rate: rate, Token: token}); werr != nil {
					// The fresh connection died before the subscription was
					// re-established; treat it like any other failed attempt.
					_ = conn.Close()
					err = werr
				}
			}
			if err == nil {
				return conn, attempts, backoff, nil
			}
		}
		// Move on to the next cluster member (if there is one) before the
		// backoff sleep: one down daemon costs one attempt, not the client.
		c.rotateAddr()
		if c.opts.MaxAttempts > 0 && attempts >= c.opts.MaxAttempts {
			return nil, attempts, backoff, fmt.Errorf("client: reconnect to %s gave up after %d attempts: %w", addr, attempts, err)
		}
	}
}

// finalize records the terminal error and tears the client down. It is the
// only closer of the subscription channel, so stream sends never race a
// close.
func (c *Client) finalize(err error) {
	c.mu.Lock()
	if c.closing.Load() {
		c.err = ErrClosed
	} else {
		c.err = err
	}
	stream := c.stream
	c.stream = nil
	conn := c.conn
	c.mu.Unlock()
	_ = conn.Close()
	close(c.done)
	if stream != nil {
		close(stream)
	}
}

// dispatchStream hands σ′ ids to the subscription channel without ever
// blocking the reader: a full buffer drops the new arrivals (counted), so
// a stalled consumer cannot wedge sample responses behind stream data.
func (c *Client) dispatchStream(ids []uint64) {
	c.mu.Lock()
	stream := c.stream
	c.mu.Unlock()
	if stream == nil {
		c.streamDropped.Add(uint64(len(ids)))
		return
	}
	for i, id := range ids {
		select {
		case stream <- nodesampling.NodeID(id):
		default:
			c.streamDropped.Add(uint64(len(ids) - i))
			return
		}
	}
}

// write sends one frame under the write lock, against the current
// connection. During a reconnection window the stale connection fails the
// write, surfacing a transient error to the caller.
func (c *Client) write(f netgossip.Frame) error {
	_, err := c.writeRPC(f)
	return err
}

// writeRPC is write for request/response exchanges: it also returns the
// session generation the frame was written against, so the caller can
// match the response to the session that should answer it (and recognise
// that no answer can come once that session is gone).
func (c *Client) writeRPC(f netgossip.Frame) (uint64, error) {
	select {
	case <-c.done:
		return 0, c.Err()
	default:
	}
	c.mu.Lock()
	conn := c.conn
	gen := c.gen
	c.mu.Unlock()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := netgossip.WriteFrame(conn, f); err != nil {
		return gen, fmt.Errorf("client: write: %w", err)
	}
	return gen, nil
}

// sessionGen reports the generation of the current connection.
func (c *Client) sessionGen() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// PushBatch feeds identifiers into the daemon's input stream. Batches
// larger than the wire limit are split transparently. The slice may be
// reused after the call returns.
func (c *Client) PushBatch(ids []nodesampling.NodeID) error {
	for len(ids) > 0 {
		n := len(ids)
		if n > netgossip.MaxBatch {
			n = netgossip.MaxBatch
		}
		raw := make([]uint64, n)
		for i, id := range ids[:n] {
			raw[i] = uint64(id)
		}
		if err := c.write(netgossip.Frame{Type: netgossip.FramePushBatch, IDs: raw}); err != nil {
			return err
		}
		ids = ids[n:]
	}
	return nil
}

// Sample requests n uniform samples (1 ≤ n; the daemon caps how many it
// answers with). An empty slice with a nil error means the pool holds no
// ids yet.
func (c *Client) Sample(n int) ([]nodesampling.NodeID, error) {
	// A SampleResp frame carries at most MaxBatch ids, so larger requests
	// could never be answered in full anyway.
	if n < 1 || n > netgossip.MaxBatch {
		return nil, fmt.Errorf("client: sample count must be in [1, %d], got %d", netgossip.MaxBatch, n)
	}
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	// Clear any abandoned response from a timed-out predecessor.
	select {
	case <-c.samplec:
	default:
	}
	gen, err := c.writeRPC(netgossip.Frame{Type: netgossip.FrameSample, N: uint32(n)})
	if err != nil {
		return nil, err
	}
	timeout := time.After(rpcTimeout)
	for {
		select {
		case resp := <-c.samplec:
			if resp.gen != gen {
				// A response buffered by a previous session (possible when
				// the rpc straddles a reconnect) answers a request that no
				// longer exists; keep waiting for this session's answer.
				continue
			}
			out := make([]nodesampling.NodeID, len(resp.ids))
			for i, id := range resp.ids {
				out[i] = nodesampling.NodeID(id)
			}
			return out, nil
		case <-c.done:
			return nil, c.Err()
		case <-timeout:
			// The response may still arrive later and would be mistaken for
			// the answer to the next request; the connection is indeterminate
			// now, so tear it down — unless the session this request was
			// written to is already gone and replaced, in which case the
			// successor is healthy and owes this rpc nothing.
			c.dropSessionIf(gen)
			return nil, errors.New("client: sample response timed out")
		}
	}
}

// dropSessionIf discards the current connection, but only if it is still
// the session the failed rpc was written to: the generation comparison and
// the connection capture happen under one lock acquisition, so a redial
// landing between an rpc timeout and its teardown can never cost the
// healthy successor its fresh connection (closing the captured connection
// outside the lock is safe — it is the stale session's, already dead). A
// reconnecting client then gets a replacement from the supervisor
// (re-subscribing as needed); any other client closes for good.
func (c *Client) dropSessionIf(gen uint64) {
	if c.opts.Reconnect && c.canRedial {
		c.mu.Lock()
		conn := c.conn
		current := c.gen == gen
		c.mu.Unlock()
		if current {
			_ = conn.Close()
		}
		return
	}
	_ = c.Close()
}

// Ping round-trips a keepalive token and verifies the echo.
func (c *Client) Ping() error {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	select {
	case <-c.pongc:
	default:
	}
	token := c.pingSeq.Add(1)
	gen, err := c.writeRPC(netgossip.Frame{Type: netgossip.FramePing, Token: token})
	if err != nil {
		return err
	}
	timeout := time.After(rpcTimeout)
	for {
		select {
		case echo := <-c.pongc:
			if echo.gen != gen {
				// The previous session's pong, buffered across a reconnect:
				// not this Ping's echo, and no reason to fail a healthy new
				// session. Wait on.
				continue
			}
			if echo.token != token {
				return fmt.Errorf("client: pong token %d, want %d", echo.token, token)
			}
			return nil
		case <-c.done:
			return c.Err()
		case <-timeout:
			// As with Sample: a late pong would desynchronise the next
			// exchange, so drop the session — but only the session this ping
			// was actually written to, never a healthy successor.
			c.dropSessionIf(gen)
			return errors.New("client: pong timed out")
		}
	}
}

// Subscribe asks the daemon to stream σ′ to this connection and returns
// the channel carrying it, buffered to the given capacity. Only one
// subscription per connection; the channel closes when the client closes
// for good (under DialOptions.Reconnect it stays open across daemon
// restarts, and the subscription is re-issued automatically on the fresh
// connection). A consumer that stops reading loses the newest arrivals
// (StreamDropped counts them) — the daemon additionally sheds oldest
// buffered draws on its side, so a stalled subscriber never builds an
// unbounded backlog anywhere. The daemon cuts connections with no inbound
// traffic for an extended period (its slowloris defence); a subscriber
// that pushes nothing should call Ping every few minutes to keep the
// stream alive.
func (c *Client) Subscribe(capacity int) (<-chan nodesampling.NodeID, error) {
	return c.SubscribeEvery(capacity, 1)
}

// SubscribeEvery is Subscribe with per-subscription decimation: the daemon
// delivers only every every-th σ′ draw, so a modest consumer rides the
// stream at a rate it can afford (a 1-in-k thinning of an i.i.d. uniform
// stream is itself i.i.d. uniform).
//
// SubscribeEvery keeps the pre-extension wire form, so it works against
// daemons of any vintage — which also means the daemon never acks it and
// a reconnect (DialOptions.Reconnect) restarts the decimation window.
// That can only stretch delivery spacing, never compress it. A
// subscription that also carries a rate cap (SubscribeRate) uses the
// extended form and continues its window across reconnects via the
// daemon's resume token.
func (c *Client) SubscribeEvery(capacity, every int) (<-chan nodesampling.NodeID, error) {
	return c.SubscribeRate(capacity, every, 0)
}

// SubscribeRate is SubscribeEvery with a delivery rate cap: the daemon
// discards (and accounts) deliveries beyond rate ids/second for this
// subscription, enforced server-side with a token bucket allowing one
// second of burst. rate 0 leaves the subscription uncapped. Decimation
// composes with the cap: the 1-in-every thinning runs first, the bucket
// meters what survives it.
//
// A rate-capped subscription uses the extended Subscribe wire form, which
// the daemon acknowledges with a resume token; under
// DialOptions.Reconnect the re-issued subscription presents it, and the
// server seeds the fresh subscription's offer counter with the old one's
// — so across the whole stitched stream, two deliveries stay (at least)
// every offered draws apart. (Old daemons reject the extended form
// outright; rate caps require an upgraded daemon.)
func (c *Client) SubscribeRate(capacity, every int, rate uint32) (<-chan nodesampling.NodeID, error) {
	if capacity < 1 || capacity > MaxSubscribeCapacity {
		return nil, fmt.Errorf("client: subscription capacity must be in [1, %d], got %d", MaxSubscribeCapacity, capacity)
	}
	if every < 1 || every > MaxSubscribeEvery {
		return nil, fmt.Errorf("client: decimation interval must be in [1, %d], got %d", MaxSubscribeEvery, every)
	}
	c.mu.Lock()
	if c.stream != nil {
		c.mu.Unlock()
		return nil, errors.New("client: already subscribed")
	}
	// c.err is assigned inside the supervisor's final c.mu section, before
	// it snapshots c.stream for closing — so checking it here (rather than
	// c.done, which closes later) guarantees either this registration is
	// observed by the teardown or the teardown is observed here.
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	ch := make(chan nodesampling.NodeID, capacity)
	c.stream = ch
	c.subCap, c.subEvery, c.subRate = capacity, every, rate
	c.mu.Unlock()
	if err := c.write(netgossip.Frame{Type: netgossip.FrameSubscribe, N: uint32(capacity), Every: uint32(every), Rate: rate}); err != nil {
		if c.opts.Reconnect && c.canRedial && !c.closing.Load() {
			// The registration stands: the supervisor will re-issue it on
			// the next connection, so the subscription survives a restart
			// that lands exactly here.
			return ch, nil
		}
		// The supervisor is the only closer of the stream channel (closing
		// it here would race a concurrent dispatchStream send); a
		// connection whose Subscribe could not be written is dead weight
		// anyway, so tear it down and let the supervisor close ch on its
		// way out.
		_ = c.Close()
		return nil, err
	}
	return ch, nil
}

// StreamDropped reports how many σ′ ids the client discarded because the
// subscription buffer was full when they arrived.
func (c *Client) StreamDropped() uint64 { return c.streamDropped.Load() }

// Reconnects reports how many times the client re-established its
// connection (always 0 without DialOptions.Reconnect).
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// Err returns the error that terminated the connection, or nil while it is
// live (including while a reconnecting client is between connections).
func (c *Client) Err() error {
	select {
	case <-c.done:
	default:
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down and waits for the supervisor (closing
// any subscription channel). Idempotent.
func (c *Client) Close() error {
	c.closing.Store(true)
	c.closeOnce.Do(func() { close(c.closingCh) })
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	_ = conn.Close()
	<-c.done
	return nil
}
