// Package client speaks the unsd daemon's framed bidirectional protocol
// over a single TCP connection: push identifier batches up, subscribe to
// the sampling service's continuous output stream σ′ down, and issue
// sample requests and keepalives in between — the paper's stream-in/
// stream-out service shape without per-sample HTTP round trips.
//
// A Client is safe for concurrent use. Writes are serialised internally; a
// dedicated reader goroutine dispatches stream data, sample responses and
// pongs, so a subscription keeps flowing while other calls are in flight.
//
// Typical session:
//
//	c, err := client.Dial("127.0.0.1:7947")
//	defer c.Close()
//	out, _ := c.Subscribe(1024)
//	go func() {
//	    for id := range out { use(id) }
//	}()
//	c.PushBatch(ids) // as the overlay gossips them in
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nodesampling"
	"nodesampling/internal/netgossip"
)

// ErrClosed is returned by calls on a client whose connection has been
// closed (by Close, a server Error frame, or a connection failure — Err
// tells them apart).
var ErrClosed = errors.New("client: connection closed")

// MaxSubscribeCapacity bounds Subscribe's buffer argument: it caps the
// client-side channel allocation (the daemon additionally clamps its own
// buffer to a smaller operational limit).
const MaxSubscribeCapacity = 1 << 20

// rpcTimeout bounds how long Sample and Ping wait for their response frame.
const rpcTimeout = 30 * time.Second

// Client is one framed connection to an unsd daemon.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serialises frame writes

	// rpcMu admits one request/response exchange (Sample or Ping) at a
	// time, so responses need no correlation ids on the wire.
	rpcMu   sync.Mutex
	samplec chan []uint64
	pongc   chan uint64

	mu     sync.Mutex
	stream chan nodesampling.NodeID // nil until Subscribe
	err    error                    // first fatal error, behind done

	done          chan struct{} // closed when the reader exits
	closing       atomic.Bool
	pingSeq       atomic.Uint64
	streamDropped atomic.Uint64
}

// Dial connects to an unsd stream listener.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return New(conn), nil
}

// New wraps an established connection (any net.Conn speaking the framed
// protocol). The client owns the connection from this point.
func New(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		samplec: make(chan []uint64, 1),
		pongc:   make(chan uint64, 1),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// readLoop is the connection's only reader: it dispatches every incoming
// frame and records the first fatal error. It is also the only closer of
// the subscription channel, so stream sends never race a close.
func (c *Client) readLoop() {
	var err error
	for {
		var f netgossip.Frame
		f, err = netgossip.ReadFrame(c.conn)
		if err != nil {
			break
		}
		switch f.Type {
		case netgossip.FrameStreamData:
			c.dispatchStream(f.IDs)
		case netgossip.FrameSampleResp:
			select {
			case c.samplec <- f.IDs:
			default: // unsolicited or abandoned response
			}
		case netgossip.FramePong:
			select {
			case c.pongc <- f.Token:
			default:
			}
		case netgossip.FrameError:
			err = fmt.Errorf("client: server error: %s", f.Msg)
		default:
			err = fmt.Errorf("client: unexpected frame type %d from server", f.Type)
		}
		if err != nil {
			break
		}
	}
	c.mu.Lock()
	if c.closing.Load() {
		c.err = ErrClosed
	} else {
		c.err = err
	}
	stream := c.stream
	c.stream = nil
	c.mu.Unlock()
	_ = c.conn.Close()
	close(c.done)
	if stream != nil {
		close(stream)
	}
}

// dispatchStream hands σ′ ids to the subscription channel without ever
// blocking the reader: a full buffer drops the new arrivals (counted), so
// a stalled consumer cannot wedge sample responses behind stream data.
func (c *Client) dispatchStream(ids []uint64) {
	c.mu.Lock()
	stream := c.stream
	c.mu.Unlock()
	if stream == nil {
		c.streamDropped.Add(uint64(len(ids)))
		return
	}
	for i, id := range ids {
		select {
		case stream <- nodesampling.NodeID(id):
		default:
			c.streamDropped.Add(uint64(len(ids) - i))
			return
		}
	}
}

// write sends one frame under the write lock.
func (c *Client) write(f netgossip.Frame) error {
	select {
	case <-c.done:
		return c.Err()
	default:
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := netgossip.WriteFrame(c.conn, f); err != nil {
		return fmt.Errorf("client: write: %w", err)
	}
	return nil
}

// PushBatch feeds identifiers into the daemon's input stream. Batches
// larger than the wire limit are split transparently. The slice may be
// reused after the call returns.
func (c *Client) PushBatch(ids []nodesampling.NodeID) error {
	for len(ids) > 0 {
		n := len(ids)
		if n > netgossip.MaxBatch {
			n = netgossip.MaxBatch
		}
		raw := make([]uint64, n)
		for i, id := range ids[:n] {
			raw[i] = uint64(id)
		}
		if err := c.write(netgossip.Frame{Type: netgossip.FramePushBatch, IDs: raw}); err != nil {
			return err
		}
		ids = ids[n:]
	}
	return nil
}

// Sample requests n uniform samples (1 ≤ n; the daemon caps how many it
// answers with). An empty slice with a nil error means the pool holds no
// ids yet.
func (c *Client) Sample(n int) ([]nodesampling.NodeID, error) {
	// A SampleResp frame carries at most MaxBatch ids, so larger requests
	// could never be answered in full anyway.
	if n < 1 || n > netgossip.MaxBatch {
		return nil, fmt.Errorf("client: sample count must be in [1, %d], got %d", netgossip.MaxBatch, n)
	}
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	// Clear any abandoned response from a timed-out predecessor.
	select {
	case <-c.samplec:
	default:
	}
	if err := c.write(netgossip.Frame{Type: netgossip.FrameSample, N: uint32(n)}); err != nil {
		return nil, err
	}
	select {
	case ids := <-c.samplec:
		out := make([]nodesampling.NodeID, len(ids))
		for i, id := range ids {
			out[i] = nodesampling.NodeID(id)
		}
		return out, nil
	case <-c.done:
		return nil, c.Err()
	case <-time.After(rpcTimeout):
		// The response may still arrive later and would be mistaken for the
		// answer to the next request; the connection is indeterminate now,
		// so tear it down.
		_ = c.Close()
		return nil, errors.New("client: sample response timed out")
	}
}

// Ping round-trips a keepalive token and verifies the echo.
func (c *Client) Ping() error {
	c.rpcMu.Lock()
	defer c.rpcMu.Unlock()
	select {
	case <-c.pongc:
	default:
	}
	token := c.pingSeq.Add(1)
	if err := c.write(netgossip.Frame{Type: netgossip.FramePing, Token: token}); err != nil {
		return err
	}
	select {
	case echo := <-c.pongc:
		if echo != token {
			return fmt.Errorf("client: pong token %d, want %d", echo, token)
		}
		return nil
	case <-c.done:
		return c.Err()
	case <-time.After(rpcTimeout):
		// As with Sample: a late pong would desynchronise the next exchange.
		_ = c.Close()
		return errors.New("client: pong timed out")
	}
}

// Subscribe asks the daemon to stream σ′ to this connection and returns
// the channel carrying it, buffered to the given capacity. Only one
// subscription per connection; the channel closes when the connection
// does. A consumer that stops reading loses the newest arrivals
// (StreamDropped counts them) — the daemon additionally sheds oldest
// buffered draws on its side, so a stalled subscriber never builds an
// unbounded backlog anywhere. The daemon cuts connections with no inbound
// traffic for an extended period (its slowloris defence); a subscriber
// that pushes nothing should call Ping every few minutes to keep the
// stream alive.
func (c *Client) Subscribe(capacity int) (<-chan nodesampling.NodeID, error) {
	if capacity < 1 || capacity > MaxSubscribeCapacity {
		return nil, fmt.Errorf("client: subscription capacity must be in [1, %d], got %d", MaxSubscribeCapacity, capacity)
	}
	c.mu.Lock()
	if c.stream != nil {
		c.mu.Unlock()
		return nil, errors.New("client: already subscribed")
	}
	// c.err is assigned inside the reader's final c.mu section, before it
	// snapshots c.stream for closing — so checking it here (rather than
	// c.done, which closes later) guarantees either this registration is
	// observed by the reader's teardown or the teardown is observed here.
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	ch := make(chan nodesampling.NodeID, capacity)
	c.stream = ch
	c.mu.Unlock()
	if err := c.write(netgossip.Frame{Type: netgossip.FrameSubscribe, N: uint32(capacity)}); err != nil {
		// The reader is the only closer of the stream channel (closing it
		// here would race a concurrent dispatchStream send); a connection
		// whose Subscribe could not be written is dead weight anyway, so
		// tear it down and let the reader close ch on its way out.
		_ = c.Close()
		return nil, err
	}
	return ch, nil
}

// StreamDropped reports how many σ′ ids the client discarded because the
// subscription buffer was full when they arrived.
func (c *Client) StreamDropped() uint64 { return c.streamDropped.Load() }

// Err returns the error that terminated the connection, or nil while it is
// live.
func (c *Client) Err() error {
	select {
	case <-c.done:
	default:
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down and waits for the reader (closing any
// subscription channel). Idempotent.
func (c *Client) Close() error {
	c.closing.Store(true)
	_ = c.conn.Close()
	<-c.done
	return nil
}
