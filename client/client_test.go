package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/internal/netgossip"
)

// fakeServer answers the framed protocol on one end of a pipe with
// scripted behaviour: it echoes pings, answers samples with a fixed batch,
// and on Subscribe starts streaming the pushed ids straight back.
func fakeServer(t *testing.T, conn net.Conn, sampleResp []uint64) {
	t.Helper()
	go func() {
		defer conn.Close()
		subscribed := false
		for {
			f, err := netgossip.ReadFrame(conn)
			if err != nil {
				return
			}
			switch f.Type {
			case netgossip.FramePushBatch:
				if subscribed {
					if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameStreamData, IDs: f.IDs}); err != nil {
						return
					}
				}
			case netgossip.FrameSubscribe:
				subscribed = true
			case netgossip.FrameSample:
				n := int(f.N)
				if n > len(sampleResp) {
					n = len(sampleResp)
				}
				if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameSampleResp, IDs: sampleResp[:n]}); err != nil {
					return
				}
			case netgossip.FramePing:
				if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
					return
				}
			}
		}
	}()
}

func newTestClient(t *testing.T, sampleResp []uint64) *Client {
	t.Helper()
	server, clientEnd := net.Pipe()
	fakeServer(t, server, sampleResp)
	c := New(clientEnd)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClientPingSample(t *testing.T) {
	c := newTestClient(t, []uint64{11, 22, 33})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ids, err := c.Sample(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 11 || ids[1] != 22 {
		t.Fatalf("sample = %v", ids)
	}
	if _, err := c.Sample(0); err == nil {
		t.Fatal("Sample(0) should fail")
	}
}

func TestClientSubscribeStream(t *testing.T) {
	c := newTestClient(t, nil)
	out, err := c.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(16); err == nil {
		t.Fatal("double subscribe should fail")
	}
	want := []nodesampling.NodeID{1, 2, 3, 4}
	if err := c.PushBatch(want); err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		select {
		case got := <-out:
			if got != w {
				t.Fatalf("stream got %d, want %d", got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %d", w)
		}
	}
}

// TestClientPushChunksLargeBatches pushes more ids than one frame may carry
// and verifies they all arrive (split across frames).
func TestClientPushChunksLargeBatches(t *testing.T) {
	c := newTestClient(t, nil)
	out, err := c.Subscribe(2 * netgossip.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]nodesampling.NodeID, netgossip.MaxBatch+10)
	for i := range big {
		big[i] = nodesampling.NodeID(i)
	}
	if err := c.PushBatch(big); err != nil {
		t.Fatal(err)
	}
	for i := range big {
		select {
		case got := <-out:
			if got != big[i] {
				t.Fatalf("id %d: got %d", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at id %d", i)
		}
	}
	if err := c.PushBatch(nil); err != nil {
		t.Fatal("empty push should be a no-op")
	}
}

func TestClientCloseUnblocksAndReports(t *testing.T) {
	c := newTestClient(t, nil)
	out, err := c.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-out:
		if ok {
			t.Fatal("stream delivered after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream channel not closed")
	}
	if !errors.Is(c.Err(), ErrClosed) {
		t.Fatalf("Err after Close = %v, want ErrClosed", c.Err())
	}
	if err := c.Ping(); err == nil {
		t.Fatal("Ping on closed client should fail")
	}
	if err := c.PushBatch([]nodesampling.NodeID{1}); err == nil {
		t.Fatal("PushBatch on closed client should fail")
	}
	_ = c.Close() // idempotent
}

// TestClientServerError pins that a server Error frame surfaces through Err
// and terminates the connection.
func TestClientServerError(t *testing.T) {
	server, clientEnd := net.Pipe()
	c := New(clientEnd)
	defer c.Close()
	go func() {
		_, _ = netgossip.ReadFrame(server) // swallow the ping
		_ = netgossip.WriteFrame(server, netgossip.Frame{Type: netgossip.FrameError, Msg: "go away"})
		_ = server.Close()
	}()
	if err := c.Ping(); err == nil {
		t.Fatal("Ping should fail after server error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Err never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Err().Error(); got != "client: server error: go away" {
		t.Fatalf("Err = %q", got)
	}
}
