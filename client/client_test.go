package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"nodesampling"
	"nodesampling/internal/netgossip"
)

// fakeServer answers the framed protocol on one end of a pipe with
// scripted behaviour: it echoes pings, answers samples with a fixed batch,
// and on Subscribe starts streaming the pushed ids straight back.
func fakeServer(t *testing.T, conn net.Conn, sampleResp []uint64) {
	t.Helper()
	go func() {
		defer conn.Close()
		subscribed := false
		for {
			f, err := netgossip.ReadFrame(conn)
			if err != nil {
				return
			}
			switch f.Type {
			case netgossip.FramePushBatch:
				if subscribed {
					if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameStreamData, IDs: f.IDs}); err != nil {
						return
					}
				}
			case netgossip.FrameSubscribe:
				subscribed = true
			case netgossip.FrameSample:
				n := int(f.N)
				if n > len(sampleResp) {
					n = len(sampleResp)
				}
				if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameSampleResp, IDs: sampleResp[:n]}); err != nil {
					return
				}
			case netgossip.FramePing:
				if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
					return
				}
			}
		}
	}()
}

func newTestClient(t *testing.T, sampleResp []uint64) *Client {
	t.Helper()
	server, clientEnd := net.Pipe()
	fakeServer(t, server, sampleResp)
	c := New(clientEnd)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestClientPingSample(t *testing.T) {
	c := newTestClient(t, []uint64{11, 22, 33})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	ids, err := c.Sample(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 11 || ids[1] != 22 {
		t.Fatalf("sample = %v", ids)
	}
	if _, err := c.Sample(0); err == nil {
		t.Fatal("Sample(0) should fail")
	}
}

func TestClientSubscribeStream(t *testing.T) {
	c := newTestClient(t, nil)
	out, err := c.Subscribe(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Subscribe(16); err == nil {
		t.Fatal("double subscribe should fail")
	}
	want := []nodesampling.NodeID{1, 2, 3, 4}
	if err := c.PushBatch(want); err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		select {
		case got := <-out:
			if got != w {
				t.Fatalf("stream got %d, want %d", got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %d", w)
		}
	}
}

// TestClientPushChunksLargeBatches pushes more ids than one frame may carry
// and verifies they all arrive (split across frames).
func TestClientPushChunksLargeBatches(t *testing.T) {
	c := newTestClient(t, nil)
	out, err := c.Subscribe(2 * netgossip.MaxBatch)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]nodesampling.NodeID, netgossip.MaxBatch+10)
	for i := range big {
		big[i] = nodesampling.NodeID(i)
	}
	if err := c.PushBatch(big); err != nil {
		t.Fatal(err)
	}
	for i := range big {
		select {
		case got := <-out:
			if got != big[i] {
				t.Fatalf("id %d: got %d", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out at id %d", i)
		}
	}
	if err := c.PushBatch(nil); err != nil {
		t.Fatal("empty push should be a no-op")
	}
}

func TestClientCloseUnblocksAndReports(t *testing.T) {
	c := newTestClient(t, nil)
	out, err := c.Subscribe(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-out:
		if ok {
			t.Fatal("stream delivered after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream channel not closed")
	}
	if !errors.Is(c.Err(), ErrClosed) {
		t.Fatalf("Err after Close = %v, want ErrClosed", c.Err())
	}
	if err := c.Ping(); err == nil {
		t.Fatal("Ping on closed client should fail")
	}
	if err := c.PushBatch([]nodesampling.NodeID{1}); err == nil {
		t.Fatal("PushBatch on closed client should fail")
	}
	_ = c.Close() // idempotent
}

// TestClientServerError pins that a server Error frame surfaces through Err
// and terminates the connection.
func TestClientServerError(t *testing.T) {
	server, clientEnd := net.Pipe()
	c := New(clientEnd)
	defer c.Close()
	go func() {
		_, _ = netgossip.ReadFrame(server) // swallow the ping
		_ = netgossip.WriteFrame(server, netgossip.Frame{Type: netgossip.FrameError, Msg: "go away"})
		_ = server.Close()
	}()
	if err := c.Ping(); err == nil {
		t.Fatal("Ping should fail after server error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("Err never surfaced")
		}
		time.Sleep(time.Millisecond)
	}
	if got := c.Err().Error(); got != "client: server error: go away" {
		t.Fatalf("Err = %q", got)
	}
}

// restartableServer is a real TCP stub speaking the framed protocol, built
// to be killed and resurrected on the same address for reconnect tests.
type restartableServer struct {
	t    *testing.T
	addr string

	mu   sync.Mutex
	ln   net.Listener
	conn net.Conn

	subscribes chan netgossip.Frame // every Subscribe frame observed
}

func newRestartableServer(t *testing.T) *restartableServer {
	t.Helper()
	s := &restartableServer{t: t, subscribes: make(chan netgossip.Frame, 16)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.start(ln)
	t.Cleanup(s.kill)
	return s
}

func (s *restartableServer) start(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conn = conn
			s.mu.Unlock()
			go s.serve(conn)
		}
	}()
}

// serve answers one connection: pongs pings, echoes pushed batches as
// stream data once subscribed, and reports Subscribe frames.
func (s *restartableServer) serve(conn net.Conn) {
	defer conn.Close()
	subscribed := false
	for {
		f, err := netgossip.ReadFrame(conn)
		if err != nil {
			return
		}
		switch f.Type {
		case netgossip.FrameSubscribe:
			subscribed = true
			s.subscribes <- f
		case netgossip.FramePushBatch:
			if subscribed {
				if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FrameStreamData, IDs: f.IDs}); err != nil {
					return
				}
			}
		case netgossip.FramePing:
			if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
				return
			}
		}
	}
}

// kill closes the listener and the live connection — a daemon crash.
func (s *restartableServer) kill() {
	s.mu.Lock()
	ln, conn := s.ln, s.conn
	s.ln, s.conn = nil, nil
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	if conn != nil {
		_ = conn.Close()
	}
}

// restart brings the listener back on the same address.
func (s *restartableServer) restart() {
	s.t.Helper()
	var ln net.Listener
	var err error
	// The just-freed port can lag a moment on some kernels.
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", s.addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		s.t.Fatalf("relisten on %s: %v", s.addr, err)
	}
	s.start(ln)
}

// TestClientReconnectResubscribes is the kill-and-restart e2e: a client
// dialled with Reconnect survives a daemon restart — it redials with
// backoff, re-issues its subscription (same capacity and decimation
// interval) and keeps the same stream channel flowing.
func TestClientReconnectResubscribes(t *testing.T) {
	srv := newRestartableServer(t)
	c, err := DialWithOptions(srv.addr, DialOptions{
		Reconnect:  true,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	out, err := c.SubscribeEvery(256, 3)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case f := <-srv.subscribes:
		if f.N != 256 || f.Every != 3 {
			t.Fatalf("first subscribe N=%d Every=%d", f.N, f.Every)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never saw the subscription")
	}
	// The decimated echo stub streams pushed batches straight back.
	if err := c.PushBatch([]nodesampling.NodeID{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-out:
		if id < 1 || id > 3 {
			t.Fatalf("stream echoed %d", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no stream data before the restart")
	}

	// Crash the daemon, then bring it back on the same address.
	srv.kill()
	srv.restart()

	// The client must re-subscribe with the exact original parameters.
	select {
	case f := <-srv.subscribes:
		if f.N != 256 || f.Every != 3 {
			t.Fatalf("re-subscribe N=%d Every=%d, want 256 and 3", f.N, f.Every)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client never re-subscribed after the restart")
	}
	if c.Reconnects() == 0 {
		t.Fatal("Reconnects() did not count the re-established connection")
	}
	if c.Err() != nil {
		t.Fatalf("reconnected client reports terminal error %v", c.Err())
	}

	// The original channel keeps flowing: pushes may race the dead window,
	// so retry until an echo lands.
	deadline := time.After(10 * time.Second)
	got := false
	for !got {
		_ = c.PushBatch([]nodesampling.NodeID{4, 5, 6})
		select {
		case id, ok := <-out:
			if !ok {
				t.Fatal("stream channel closed across a reconnect")
			}
			if id < 1 || id > 6 {
				t.Fatalf("stream echoed %d after reconnect", id)
			}
			if id >= 4 {
				// Echo of a post-restart push (earlier ids are leftovers of
				// the first push still buffered in the channel).
				got = true
			}
		case <-deadline:
			t.Fatal("no stream data after the reconnect")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// RPCs work over the fresh connection too.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after reconnect: %v", err)
	}
	// Close ends it for good: the channel closes and Err reports ErrClosed.
	_ = c.Close()
	waitClosed := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				if !errors.Is(c.Err(), ErrClosed) {
					t.Fatalf("Err after close = %v", c.Err())
				}
				return
			}
		case <-waitClosed:
			t.Fatal("stream channel never closed after Close")
		}
	}
}

// TestClientReconnectGivesUp: with MaxAttempts set and no server coming
// back, the client must close permanently instead of spinning forever.
func TestClientReconnectGivesUp(t *testing.T) {
	srv := newRestartableServer(t)
	c, err := DialWithOptions(srv.addr, DialOptions{
		Reconnect:   true,
		MinBackoff:  time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.kill()
	select {
	case <-c.done:
	case <-time.After(10 * time.Second):
		t.Fatal("client never gave up with MaxAttempts=3")
	}
	if c.Err() == nil {
		t.Fatal("exhausted client reports no error")
	}
}

// TestClientNoReconnectByDefault: a plain Dial dies with its connection.
func TestClientNoReconnectByDefault(t *testing.T) {
	srv := newRestartableServer(t)
	c, err := Dial(srv.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.kill()
	select {
	case <-c.done:
	case <-time.After(5 * time.Second):
		t.Fatal("plain client survived its connection")
	}
	if c.Reconnects() != 0 {
		t.Fatal("plain client reconnected")
	}
}

// TestPingIgnoresStaleSessionPong pins the stale-pong-across-reconnect
// bugfix: a pong buffered by a *previous* read session can surface exactly
// in the window between a new Ping's drain and its response — without
// generation tagging, the Ping would consume the stale token, fail the
// echo check, and condemn a healthy connection. The test reproduces the
// window deterministically: the server holds the real pong back while a
// stale-generation pong is injected into the rpc channel.
func TestPingIgnoresStaleSessionPong(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	gotPing := make(chan uint64, 4)
	release := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			f, err := netgossip.ReadFrame(conn)
			if err != nil {
				return
			}
			if f.Type != netgossip.FramePing {
				continue
			}
			gotPing <- f.Token
			<-release
			if err := netgossip.WriteFrame(conn, netgossip.Frame{Type: netgossip.FramePong, Token: f.Token}); err != nil {
				return
			}
		}
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pingErr := make(chan error, 1)
	go func() { pingErr <- c.Ping() }()
	select {
	case <-gotPing:
	case <-time.After(5 * time.Second):
		t.Fatal("server never received the ping")
	}
	// The Ping has drained pongc and written its frame; now the previous
	// session's leftover pong arrives (what a reconnect turnover buffers).
	c.pongc <- taggedToken{token: 777, gen: c.sessionGen() - 1}
	close(release)
	select {
	case err := <-pingErr:
		if err != nil {
			t.Fatalf("Ping failed on a stale session's pong: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Ping never completed")
	}
	// The channel must not stay poisoned: the next exchange works too, and
	// the connection was never condemned.
	if err := c.Ping(); err != nil {
		t.Fatalf("follow-up Ping: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("healthy connection was torn down: %v", err)
	}
}
