package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"nodesampling/internal/telemetry"
)

// ScrapeMetrics fetches a daemon's GET /metrics endpoint and parses the
// Prometheus text exposition into a queryable snapshot — the programmatic
// counterpart of pointing a Prometheus server at the daemon, for tools
// (unsload, health checks, tests) that want one scrape without one. token,
// when non-empty, is presented as a bearer credential, matching daemons run
// with -admin-token-all. A nil hc uses http.DefaultClient; pass a client
// with a TLS transport for https endpoints.
//
// The returned snapshot answers point queries:
//
//	s, err := client.ScrapeMetrics(ctx, nil, "http://127.0.0.1:9100/metrics", "")
//	processed, ok := s.Value("unsd_pool_processed_ids_total")
//	perShard, ok := s.Value("unsd_shard_processed_ids_total", "shard", "0")
func ScrapeMetrics(ctx context.Context, hc *http.Client, url, token string) (*telemetry.Scrape, error) {
	if url == "" {
		return nil, errors.New("client: no metrics URL")
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a little so the connection can be reused, then report.
		_, _ = io.CopyN(io.Discard, resp.Body, 512)
		return nil, fmt.Errorf("client: scrape %s: status %d", url, resp.StatusCode)
	}
	return telemetry.Parse(resp.Body)
}
