package client

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestScrapeMetrics(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if auth := r.Header.Get("Authorization"); auth != "" && auth != "Bearer tok" {
			http.Error(w, "no", http.StatusForbidden)
			return
		}
		_, _ = io.WriteString(w, "# HELP unsd_pool_processed_ids_total Ids.\n"+
			"# TYPE unsd_pool_processed_ids_total counter\n"+
			"unsd_pool_processed_ids_total 42\n"+
			"# HELP unsd_shard_processed_ids_total Ids per shard.\n"+
			"# TYPE unsd_shard_processed_ids_total counter\n"+
			"unsd_shard_processed_ids_total{shard=\"0\"} 30\n"+
			"unsd_shard_processed_ids_total{shard=\"1\"} 12\n")
	}))
	defer ts.Close()

	s, err := ScrapeMetrics(context.Background(), nil, ts.URL, "")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("unsd_pool_processed_ids_total"); !ok || v != 42 {
		t.Fatalf("Value = %v, %v", v, ok)
	}
	if v, ok := s.Value("unsd_shard_processed_ids_total", "shard", "1"); !ok || v != 12 {
		t.Fatalf("labelled Value = %v, %v", v, ok)
	}
	if _, err := ScrapeMetrics(context.Background(), nil, ts.URL, "tok"); err != nil {
		t.Fatalf("token scrape: %v", err)
	}
	if _, err := ScrapeMetrics(context.Background(), nil, ts.URL, "wrong"); err == nil {
		t.Fatal("wrong token scrape succeeded")
	}
	if _, err := ScrapeMetrics(context.Background(), nil, "", ""); err == nil {
		t.Fatal("empty URL accepted")
	}
}
