package nodesampling

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nodesampling/internal/subhub"
)

// ErrServiceClosed is returned by Push and Flush after Close.
var ErrServiceClosed = errors.New("nodesampling: service closed")

// Service runs a Sampler behind a goroutine so that many producers can feed
// the input stream concurrently while consumers read samples or subscribe
// to the output stream. It is the "sampling service local to a correct
// node" of the paper's Figure 1, continuously reading σ and writing σ′.
//
// The output stream fans out through the same subscription hub as Pool
// (internal/subhub): each subscriber owns a drop-oldest ring with exact
// offered/delivered/dropped accounting, optional decimation, and the
// guarantee that a stalled subscriber sheds stream elements instead of
// stalling the sampling pipeline.
//
// A Service must be created with NewService and released with Close.
type Service struct {
	mu      sync.Mutex
	sampler Sampler

	in     chan NodeID
	done   chan struct{}
	closed chan struct{} // signalled once by Close
	once   sync.Once

	hub *subhub.Hub

	// subs remembers every subscription ever taken (service-scoped, so the
	// count is bounded by the consumer population) to keep Dropped
	// cumulative after cancellations; extraDropped counts draws a bridge
	// abandoned between the hub and a public channel at shutdown.
	subMu        sync.Mutex
	subs         []*subhub.Subscription
	extraDropped atomic.Uint64

	scratch [1]uint64 // run-goroutine-only publish buffer
}

// ServiceOption customises a Service.
type ServiceOption func(*serviceConfig) error

type serviceConfig struct {
	buffer int
}

// WithInputBuffer sets the input channel capacity (default 1, per the
// "channel size is one or none" rule; raise it for bursty producers that
// must not block on the sampler's processing).
func WithInputBuffer(n int) ServiceOption {
	return func(c *serviceConfig) error {
		if n < 0 {
			return fmt.Errorf("nodesampling: negative input buffer %d", n)
		}
		c.buffer = n
		return nil
	}
}

// NewService wraps sampler in a concurrent pipeline. The service owns the
// sampler from this point: the caller must not invoke the sampler directly
// anymore.
func NewService(sampler Sampler, opts ...ServiceOption) (*Service, error) {
	if sampler == nil {
		return nil, errors.New("nodesampling: nil sampler")
	}
	cfg := serviceConfig{buffer: 1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Service{
		sampler: sampler,
		in:      make(chan NodeID, cfg.buffer),
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
		hub:     subhub.New(),
	}
	go s.run()
	return s, nil
}

func (s *Service) run() {
	defer close(s.done)
	for {
		select {
		case id := <-s.in:
			s.process(id)
		case <-s.closed:
			// Drain whatever producers managed to enqueue, then stop.
			for {
				select {
				case id := <-s.in:
					s.process(id)
				default:
					return
				}
			}
		}
	}
}

func (s *Service) process(id NodeID) {
	s.mu.Lock()
	out := s.sampler.Process(id)
	s.mu.Unlock()
	if s.hub.Active() {
		s.scratch[0] = uint64(out)
		s.hub.Publish(s.scratch[:])
	}
}

// Push feeds one id from the node's input stream. It blocks while the input
// buffer is full and returns ErrServiceClosed after Close.
func (s *Service) Push(id NodeID) error {
	select {
	case <-s.closed:
		return ErrServiceClosed
	default:
	}
	select {
	case s.in <- id:
		return nil
	case <-s.closed:
		return ErrServiceClosed
	}
}

// Sample returns the service's current sample S(t). It is safe to call
// concurrently with Push; ok is false before any id was processed.
func (s *Service) Sample() (NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampler.Sample()
}

// Memory returns a copy of the sampler's current memory Γ.
func (s *Service) Memory() []NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampler.Memory()
}

// Subscribe returns a channel carrying the service's output stream σ′. The
// channel has the given capacity; elements are dropped (and counted) when
// the subscriber lags. The channel is closed when the service closes.
func (s *Service) Subscribe(capacity int) (<-chan NodeID, error) {
	return s.SubscribeEvery(capacity, 1)
}

// SubscribeEvery is Subscribe with per-subscription decimation: only every
// every-th output draw is delivered (the rest are counted as filtered in
// SubscriberStats) — the same semantics Pool and the network protocol
// offer, at single-sampler scale.
func (s *Service) SubscribeEvery(capacity, every int) (<-chan NodeID, error) {
	if capacity < 1 || capacity > subhub.MaxSubscriptionBuffer {
		return nil, fmt.Errorf("nodesampling: subscription capacity must be in [1, %d], got %d", subhub.MaxSubscriptionBuffer, capacity)
	}
	if every < 1 || every > subhub.MaxDecimation {
		return nil, fmt.Errorf("nodesampling: decimation interval must be in [1, %d], got %d", subhub.MaxDecimation, every)
	}
	select {
	case <-s.closed:
		return nil, ErrServiceClosed
	default:
	}
	sub, err := s.hub.SubscribeEvery(capacity, every)
	if err != nil {
		// The hub only closes via Close; map its sentinel to ours.
		return nil, ErrServiceClosed
	}
	s.subMu.Lock()
	s.subs = append(s.subs, sub)
	s.subMu.Unlock()
	ch := make(chan NodeID, capacity)
	go s.bridge(sub, ch)
	return ch, nil
}

// bridge forwards a hub subscription to the public typed channel. After
// cancellation (service Close) it keeps draining the closing hub channel
// but counts undeliverable draws as dropped, so the cumulative accounting
// identity — received + Dropped() == published — survives shutdown even
// for consumers that stopped reading.
func (s *Service) bridge(sub *subhub.Subscription, ch chan<- NodeID) {
	defer close(ch)
	abandoned := false
	for id := range sub.C() {
		if abandoned {
			s.extraDropped.Add(1)
			continue
		}
		select {
		case ch <- NodeID(id):
		default:
			select {
			case ch <- NodeID(id):
			case <-sub.Done():
				// Cancelled with the consumer's buffer full: this draw and
				// the rest of the hub buffer can never be handed over.
				s.extraDropped.Add(1)
				abandoned = true
			}
		}
	}
}

// SubscriberStats reports each live subscription's delivery accounting
// (offered, delivered, dropped, filtered), in subscription order.
func (s *Service) SubscriberStats() []SubscriberStats {
	st := s.hub.Stats()
	out := make([]SubscriberStats, len(st))
	for i, sub := range st {
		out[i] = SubscriberStats(sub)
	}
	return out
}

// Dropped reports how many output elements were discarded because
// subscribers lagged (cumulative across all subscriptions, including
// cancelled ones).
func (s *Service) Dropped() uint64 {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	total := s.extraDropped.Load()
	for _, sub := range s.subs {
		total += sub.Dropped()
	}
	return total
}

// Close stops the pipeline, waits for the worker goroutine to drain the
// input buffer, and closes all subscription channels. It is idempotent.
// Pushes racing with Close either complete or return ErrServiceClosed; the
// input channel itself is never closed, so no send can panic.
func (s *Service) Close() error {
	s.once.Do(func() {
		close(s.closed)
		<-s.done
		s.hub.Close()
	})
	return nil
}
