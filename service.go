package nodesampling

import (
	"errors"
	"fmt"
	"sync"
)

// ErrServiceClosed is returned by Push and Flush after Close.
var ErrServiceClosed = errors.New("nodesampling: service closed")

// Service runs a Sampler behind a goroutine so that many producers can feed
// the input stream concurrently while consumers read samples or subscribe
// to the output stream. It is the "sampling service local to a correct
// node" of the paper's Figure 1, continuously reading σ and writing σ′.
//
// A Service must be created with NewService and released with Close.
type Service struct {
	mu      sync.Mutex
	sampler Sampler

	in     chan NodeID
	done   chan struct{}
	closed chan struct{} // signalled once by Close
	once   sync.Once

	outMu   sync.Mutex
	outSubs []chan NodeID
	dropped uint64
}

// ServiceOption customises a Service.
type ServiceOption func(*serviceConfig) error

type serviceConfig struct {
	buffer int
}

// WithInputBuffer sets the input channel capacity (default 1, per the
// "channel size is one or none" rule; raise it for bursty producers that
// must not block on the sampler's processing).
func WithInputBuffer(n int) ServiceOption {
	return func(c *serviceConfig) error {
		if n < 0 {
			return fmt.Errorf("nodesampling: negative input buffer %d", n)
		}
		c.buffer = n
		return nil
	}
}

// NewService wraps sampler in a concurrent pipeline. The service owns the
// sampler from this point: the caller must not invoke the sampler directly
// anymore.
func NewService(sampler Sampler, opts ...ServiceOption) (*Service, error) {
	if sampler == nil {
		return nil, errors.New("nodesampling: nil sampler")
	}
	cfg := serviceConfig{buffer: 1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	s := &Service{
		sampler: sampler,
		in:      make(chan NodeID, cfg.buffer),
		done:    make(chan struct{}),
		closed:  make(chan struct{}),
	}
	go s.run()
	return s, nil
}

func (s *Service) run() {
	defer close(s.done)
	for {
		select {
		case id := <-s.in:
			s.process(id)
		case <-s.closed:
			// Drain whatever producers managed to enqueue, then stop.
			for {
				select {
				case id := <-s.in:
					s.process(id)
				default:
					return
				}
			}
		}
	}
}

func (s *Service) process(id NodeID) {
	s.mu.Lock()
	out := s.sampler.Process(id)
	s.mu.Unlock()
	s.publish(out)
}

func (s *Service) publish(id NodeID) {
	s.outMu.Lock()
	defer s.outMu.Unlock()
	for _, ch := range s.outSubs {
		select {
		case ch <- id:
		default:
			// A slow subscriber must not stall the sampling pipeline: the
			// output stream is a sampling stream, so dropping an element
			// loses no information a later sample will not carry again.
			s.dropped++
		}
	}
}

// Push feeds one id from the node's input stream. It blocks while the input
// buffer is full and returns ErrServiceClosed after Close.
func (s *Service) Push(id NodeID) error {
	select {
	case <-s.closed:
		return ErrServiceClosed
	default:
	}
	select {
	case s.in <- id:
		return nil
	case <-s.closed:
		return ErrServiceClosed
	}
}

// Sample returns the service's current sample S(t). It is safe to call
// concurrently with Push; ok is false before any id was processed.
func (s *Service) Sample() (NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampler.Sample()
}

// Memory returns a copy of the sampler's current memory Γ.
func (s *Service) Memory() []NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sampler.Memory()
}

// Subscribe returns a channel carrying the service's output stream σ′. The
// channel has the given capacity; elements are dropped (and counted) when
// the subscriber lags. The channel is closed when the service closes.
func (s *Service) Subscribe(capacity int) (<-chan NodeID, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("nodesampling: subscription capacity must be at least 1, got %d", capacity)
	}
	select {
	case <-s.closed:
		return nil, ErrServiceClosed
	default:
	}
	ch := make(chan NodeID, capacity)
	s.outMu.Lock()
	s.outSubs = append(s.outSubs, ch)
	s.outMu.Unlock()
	return ch, nil
}

// Dropped reports how many output elements were discarded because
// subscribers lagged.
func (s *Service) Dropped() uint64 {
	s.outMu.Lock()
	defer s.outMu.Unlock()
	return s.dropped
}

// Close stops the pipeline, waits for the worker goroutine to drain the
// input buffer, and closes all subscription channels. It is idempotent.
// Pushes racing with Close either complete or return ErrServiceClosed; the
// input channel itself is never closed, so no send can panic.
func (s *Service) Close() error {
	s.once.Do(func() {
		close(s.closed)
		<-s.done
		s.outMu.Lock()
		for _, ch := range s.outSubs {
			close(ch)
		}
		s.outSubs = nil
		s.outMu.Unlock()
	})
	return nil
}
