// Package nodesampling provides a uniform node sampling service that is
// robust against collusions of malicious (Byzantine) nodes, implementing
//
//	E. Anceaume, Y. Busnel, B. Sericola,
//	"Uniform Node Sampling Service Robust against Collusions of Malicious
//	Nodes", 43rd IEEE/IFIP DSN, 2013.
//
// # The problem
//
// Large-scale distributed systems (gossip overlays, DHTs, load balancers)
// need a primitive that returns the identifier of a node chosen uniformly at
// random from the system. The primitive is fed by an unbounded stream of
// node identifiers exchanged by the system — a stream that colluding
// malicious nodes can bias arbitrarily by injecting their own (Sybil)
// identifiers. A robust sampler must guarantee, despite such bias:
//
//   - Uniformity: at any time, every node has probability 1/n of being the
//     emitted sample;
//   - Freshness: every node keeps reappearing in the output forever.
//
// # The algorithms
//
// The package offers two one-pass strategies operating in memory sublinear
// in the population size:
//
//   - The knowledge-free sampler (NewSampler) — the deployable strategy. It
//     maintains a sampling memory Γ of c identifiers and a Count-Min sketch
//     of k×s counters. An arriving id j is admitted into Γ with probability
//     minσ/f̂_j (the sketch's smallest counter over j's estimated
//     frequency), evicting a uniform victim; every step outputs a uniform
//     element of Γ.
//   - The omniscient sampler (NewOmniscientSampler) — the reference
//     strategy, which knows each id's true occurrence probability p_j and
//     admits with probability min(p)/p_j. Its output is provably uniform
//     and fresh (the paper's Theorem 4), making it the gold standard the
//     knowledge-free strategy approximates.
//
// The defender's lever is memory: the adversary must mint at least L_{k,s}
// distinct certified identifiers to bias one victim id and E_k to bias all
// of them, both of which grow linearly with the sketch width k and are
// independent of the system size.
//
// # Sampler strategies
//
// The sampling engine is pluggable: every sampler — single (NewSampler),
// per shard of a Pool, inside the unsd daemon — is built through a strategy
// registry keyed by name (Strategies lists them, WithStrategy selects one,
// unsd takes -strategy). A strategy implements the internal core.PoolSampler
// contract: per-id and batch processing with σ′ emission, uniform
// Sample/SampleN over its memory, a decay step, empty cloning onto a shared
// hash/seed family (the property that keeps shard states mergeable across
// Resize), and a self-contained binary state for snapshots. Registered
// backends:
//
//   - "knowledge-free" (the default): the paper's Algorithm 3 as above —
//     Count-Min sketch, admission with probability minσ/f̂_j, decay =
//     halving the counters.
//   - "basalt": a BASALT-style seeded-ranking sampler (after the stubborn
//     chaotic search of BASALT, see PAPERS.md; sketch-free). Each
//     of the c memory slots carries a private seed; an arriving id is
//     ranked by a hash of (slot seed, id) and replaces the resident if it
//     ranks lower, so each slot converges to a uniformly random minimum
//     over the observed id set regardless of injection rates. Decay
//     refreshes slot seeds round-robin, the freshness analogue.
//
// Snapshot blobs record the strategy that wrote them, and a blob restores
// only under that strategy: a mismatched restore — including a pre-v2 blob
// (implicitly knowledge-free) under any other configured strategy — fails
// loudly, naming both sides. Pre-v2 blobs restore bit-identical under the
// default strategy.
//
// The backends are not interchangeable under attack. The adversary
// tournament (unsattack -tournament, internal/adversary.RunTournament) runs
// every registered strategy against four adversarial input models and
// scores the windowed KL divergence of input and output against uniform,
// plus the paper's G_KL gain (1 = all attack bias removed). A reference run
// (population 256, c=32, 16×4 sketch, 10 windows of 4096 ids, decay every
// 512):
//
//	STRATEGY         ATTACK             INPUT_KL  OUTPUT_KL     G_KL
//	basalt           targeted-flood       2.1264     1.9921   0.0628
//	basalt           ballot-stuffing      1.8203     1.9501  -0.0713
//	basalt           churn-storm          1.2274     2.4634  -1.0078
//	basalt           slow-trickle         0.2067     2.0279  -8.8681
//	knowledge-free   targeted-flood       2.1264     0.3107   0.8538
//	knowledge-free   ballot-stuffing      1.8203     0.7863   0.5682
//	knowledge-free   churn-storm          1.2274     0.8508   0.3065
//	knowledge-free   slow-trickle         0.2067     0.2029   0.0119
//
// The knowledge-free sampler strips most of every bulk attack's divergence
// — the paper's headline result. Basalt's windowed output KL is dominated
// by its deliberately sticky slot residency (≤ c distinct ids per window),
// a different freshness/uniformity trade: its guarantees are long-run and
// per-slot, not per-window — so on this metric, at this operating point,
// the knowledge-free strategy is the right default.
//
// # Concurrency and scale
//
// Samplers returned by the constructors are single-goroutine objects.
// Service wraps a sampler with a goroutine-backed pipeline (Push/Sample/
// Subscribe) safe for concurrent use.
//
// Pool is the horizontally scaled form: it partitions the input stream
// across N independent knowledge-free shards — each with its own sketch,
// memory Γ and worker goroutine — and ingests batches (PushBatch) so the
// hand-off cost is amortised over many identifiers. The partition is an
// epoch-versioned shard map: salted rendezvous hashing over a slot table,
// unpredictable to an adversary (no precomputable shard-flooding), O(1)
// per id, and stable between resizes. Sample draws a shard weighted by its
// current |Γ|, then a uniform element of it — a uniform draw over the
// union of the memories, preserving Uniformity at the population level,
// while Freshness holds per shard. WithDecay on a Pool runs a single
// global decay clock: all shards halve their sketches on a shared epoch
// derived from the pool-wide ingest count, keeping their frequency
// estimates comparable even when the partition is momentarily skewed.
//
// # The elastic plane: Resize and snapshots
//
// The shard set is not fixed at construction. Pool.Resize re-partitions a
// live pool to a new shard count: a flush barrier quiesces the workers
// (the only ingestion stall), Γ entries move to their new owners under the
// next shard-map epoch, and sketch state follows by merging counter
// matrices — every shard's sketch is an empty clone of one pool template,
// so all shards share a hash family and their counters add exactly. An id
// that moves keeps a frequency estimate within standard Count-Min error of
// what a single global sketch would report, so the attack resistance the
// sketch provides survives the topology change. Rendezvous monotonicity
// keeps the movement minimal: growing moves ids only onto the new shards,
// shrinking only off the retired ones.
//
// The same machinery makes the pool durable. Pool.Snapshot serialises the
// whole plane — shard map and salt, per-shard sketches and memories, decay
// epoch and counters — into one versioned blob, and RestorePool revives it
// exactly: identical Γ, identical estimates, identical routing. A sampler
// restarted this way has not forgotten the attacker frequencies it spent
// the whole attack window learning, which is precisely the state the
// paper's defence depends on. The blob embeds the secret partition salt;
// store it like key material.
//
// Resize also has a policy layer: Pool.Topology and the pool's load
// signals (queue occupancy, ingest and σ′ drop counters) feed the
// internal/autoscale control loop, which the unsd daemon runs under
// -autoscale. It grows the shard plane when an input flood makes drops
// appear — the exact moment the paper's guarantees are under attack — and
// shrinks it back once the flood subsides, with EWMA smoothing, hysteresis
// and a post-resize cooldown so a single hostile burst cannot thrash the
// plane. Library users embedding a Pool can drive Resize with their own
// policy against the same signals.
//
// # The streaming output plane
//
// The paper's service is stream-in/stream-out: Algorithm 1 continuously
// emits the output stream σ′. Pool.Subscribe restores that surface at
// sharded throughput: shard workers draw one output element per ingested
// id (only while at least one subscription is live) and a subscription hub
// fans the draws out to every subscriber through fixed-capacity buffers
// with a non-blocking drop-oldest policy. A slow subscriber therefore
// loses the oldest buffered elements — which a sampling stream can always
// afford, since a later draw carries the same information — and never
// backpressures ingestion; Stats reports exact per-subscriber
// offered/delivered/dropped/filtered accounting. Subscriptions may opt
// into decimation (SubscribeEvery): only every k-th draw is delivered, so
// a modest consumer rides a fast pool at a rate it can afford — a 1-in-k
// thinning of an i.i.d. uniform stream is itself i.i.d. uniform. A
// subscription can also be rate-capped (SubscribeRate, the client's
// SubscribeRate, the wire protocol's rate field): a token bucket of r
// tokens per second with a one-second burst drops draws beyond the cap
// before they reach the buffer — time-based where decimation is
// count-based, and like it a uniformity-preserving thinning; the drops are
// accounted separately ("capped") from buffer overflow. Over the framed
// stream protocol an extended-form subscription (one carrying a rate cap
// or a resume token — the forms that prove the client speaks the
// extension; legacy-form subscribes are never acked, for their clients'
// sake) is also resumable: the subscribe acknowledgement carries a resume
// token, and a reconnecting client that presents it continues the 1-in-k
// phase exactly where the dropped connection left off instead of
// restarting the count. Service
// fans out through the same hub, with the same accounting, decimation and
// rate caps, at single-sampler scale.
//
// # Hot path anatomy
//
// Batch ingest is engineered to a nanosecond budget; the numbers below are
// from the single-CPU reference container (BENCH_10.json, ns per id,
// single-shard PushBatch ≈ 52 ns/id, 0 allocs/op steady state):
//
//   - Partition (~1–2 ns): a counting-sort pass groups the batch by
//     destination shard — two linear sweeps, no comparisons — into a pooled
//     payload buffer; the scratch tables come from a sync.Pool, so a
//     steady-state batch allocates nothing.
//   - Queue hand-off (~0 ns amortised): each shard's sub-batch is one
//     enqueue on a bounded MPSC ring (a Vyukov queue: one CAS per producer,
//     plain loads and stores for the single consumer), amortised over the
//     whole sub-batch. The payload is reference-counted and returned to its
//     pool by the last shard worker to finish with it.
//   - Sketch update (~37 ns): the dominant term. One fused Columns pass
//     premixes the id once and computes all s row columns — a Carter-Wegman
//     multiply mod 2⁶¹−1 plus a Lemire fastrange reduction per row — then
//     the add loop increments one counter per row of the flat row-major
//     matrix (~24 ns hashing, ~7 ns counter loop, ~6 ns amortised global-
//     minimum rescan, which the admission probability minσ/f̂ consults per
//     id and so must stay eagerly maintained).
//   - Admission (~14 ns): the Algorithm 3 step — a Γ membership scan
//     (~5 ns at c=10) and one PRNG draw for the Bernoulli admit/evict
//     decision (~8 ns).
//
// What is left is arithmetic the algorithm requires per id, not overhead:
// s modular multiplications and one random draw. One further fusion was
// measured and rejected — sharing a single splitmix64 premix between the
// partition map and the sketch hashes saves under 2 ns but the two
// deliberately mix different inputs (the partition premixes id⊕salt so the
// shard map stays unpredictable; the sketch premixes the raw id so blobs
// restore bit-identically), so the saving would cost a partition-map
// re-version that invalidates every restored snapshot's routing.
//
// The committed BENCH_<pr>.json artifacts pin this budget over time, and
// `unsbench -perf-compare old.json new.json` turns any two of them into a
// pass/fail regression verdict (CI gates on the previous PR's artifact).
//
// # Securing the service edge
//
// The paper's adversary model assumes the sampler sees the stream the
// overlay actually sent — an assumption that collapses if the transport
// itself can be owned. The unsd daemon therefore carries an opt-in
// security plane end to end: TLS on the HTTP and framed stream listeners
// (-tls-cert/-tls-key), mutual-TLS peer authentication on the framed
// protocol (-tls-client-ca — an unauthenticated peer never reaches the
// frame decoder, so Sybil ids need a certificate before they need a
// collusion), constant-time bearer-token authentication on the mutating
// admin endpoints (-admin-token, 401/403 disjoint from the 400/409 input
// vocabulary), and AES-256-GCM sealing of snapshot blobs at rest
// (-snapshot-key-file) — the blob embeds the secret partition salt that
// keeps the shard map unpredictable, so an unprotected copy hands an
// adversary the very unpredictability the defence rests on. The client
// side mirrors the transport through DialOptions.TLS, composing with
// automatic reconnection: every redial re-handshakes with the same
// credentials before the subscription is re-issued.
//
// # Operating the daemon: observability
//
// A sampler whose guarantees are statistical needs instrumentation that
// speaks statistics. The unsd daemon exports a Prometheus text exposition
// on GET /metrics (internal/telemetry, dependency-free): every counter the
// pool, shards, subscribers, autoscaler, stream listener and snapshot path
// already keep — and a live uniformity gauge. The gauge holds sliding
// windows over the ingest stream σ and the output stream σ′ and exports
// their KL divergence to the uniform distribution plus the paper's G_KL
// gain between them (-uniformity-window sizes it): a targeted flood is
// visible as rising unsd_uniformity_input_kl, a failing sampler as rising
// unsd_uniformity_output_kl, and a healthy one as a gain near 1 — the
// paper's evaluation, continuously computed against live traffic, scrape
// by scrape. Collectors read atomic counters and snapshot surfaces at
// scrape time; nothing is added to the per-id ingest path. Structured
// leveled logs (-log-level, -log-format=text|json) cover connection
// lifecycle, resize and autoscale decisions, snapshot outcomes and auth
// failures; -pprof mounts the Go profiler behind the admin token.
//
// # Latency and tracing
//
// Counters say how much; histograms say how long. The daemon times five
// paths into fixed-bucket Prometheus histograms (atomic increments on the
// hot path, bucket scans only at scrape time): per-wire-batch ingest
// latency (unsd_ingest_batch_duration_seconds, one observation per batch
// from any surface — HTTP, stream or gossip), Sample/SampleN service time
// (unsd_sample_duration_seconds), the σ′ emit→delivery lag through the
// fan-out queue (unsd_emit_delivery_lag_seconds), snapshot write duration
// (unsd_snapshot_write_duration_seconds) and shard-pool resize hand-off
// time (unsd_resize_duration_seconds). For depth beyond distributions,
// -trace-sample=N records one in N ingest batches as a span tree — the
// ingest root, a shard span per worker sub-batch, and the σ′ emit and
// delivery spans (internal/spans: a bounded lock-free ring, one atomic add
// per unsampled batch) — served by GET /trace as Chrome trace-event JSON
// behind the admin token; open it in a trace viewer to see where a batch's
// time went. dashboards/unsd.json is a committed Grafana dashboard over
// exactly these families; CI fails if it ever queries a family the daemon
// does not export.
//
// Two tools close the loop. client.ScrapeMetrics fetches and parses one
// scrape programmatically. cmd/unsload replays adversarial load scenarios
// (uniform baseline, targeted flood, churn storm, slow-trickle bias —
// internal/adversary's attack shapes) against a live daemon over the
// framed protocol at a target rate while scraping /metrics, and reports
// per phase: achieved rate, the daemon's own processed/dropped deltas, the
// uniformity gauge's trajectory, and client-observed p50/p95/p99 latency
// for the push-ack and Sample round trips (-latency-sample) — push the
// attack, watch the gauge degrade, watch it recover, and cross-check the
// daemon's histograms from the outside.
//
// # Cluster operation
//
// One daemon's pool shards across cores; a fleet of daemons shards across
// machines, by lifting the pool's own placement abstraction one level.
// The salted rendezvous computation that assigns hash-space slots to shard
// workers (internal/shard.NewPlacement — epoch-versioned, salted by the
// shared seed, bit-identical across versions because persisted snapshots
// and mixed fleets both replay it) here assigns the same slots to member
// daemons, so an id's route is decided by identical arithmetic at both
// levels: first to a member, then within that member's pool to a shard.
//
// Start every member with -cluster, the same -members list, the same
// explicit -seed and sampler flags (internal/cluster sorts the list, so
// member indices agree everywhere). Ingest arriving at ANY member — HTTP,
// framed stream or gossip — is partitioned against the routing table: the
// locally-owned ids enter the local pool, the rest travel to their owner
// members in batches over persistent framed connections (FrameForward,
// tagged with the sender's placement epoch). An undeliverable batch falls
// back to local ingest: misplaced, never lost, and harmless to uniformity
// because cluster-wide sampling weights members by the |Γ| they actually
// hold. Sample and SampleN at any member fan out to the fleet and merge
// the members' local draws by a |Γ|-weighted multinomial — the same
// estimate-the-union trick the pool plays across its shards — so the
// answer is uniform over the union of member memories no matter how
// unevenly ids are distributed, and no matter which member was asked.
//
// Ownership moves while the fleet runs. POST /migrate on a member that
// owns a slot range hands the range to another member: a flush barrier
// settles in-queue ids, the range's Γ ids and merged frequency state are
// exported and transferred as one versioned blob (FrameMigrateState), the
// target imports both before taking ownership, and the flip is installed
// under a bumped placement epoch and broadcast to the fleet
// (FramePlacementUpdate). An id's learned sketch evidence — the state the
// paper's defence spends the attack window accumulating — survives the
// move. The cluster plane exports its own metric families (epoch,
// per-member connectivity, forwarded and fallback ids, sample fan-out
// health) through the same /metrics surface, and cmd/unsload drives a
// whole fleet at once (comma-separated -addr targets, per-phase reports
// merged across members). Client-side, DialCluster rotates across member
// addresses on reconnect, so a subscription outlives the member it
// happened to be attached to.
//
// Use Service for a single node's modest stream, Pool when one sampler
// cannot absorb the traffic, and the unsd daemon (cmd/unsd) to serve a
// Pool over the network: HTTP for request/response (plus POST /resize,
// POST /snapshot and POST /autoscale admin endpoints for the elastic
// plane), netgossip TCP for overlay ingest, and a framed bidirectional
// stream protocol — push id batches up, receive σ′ down, one persistent
// connection per consumer. With -snapshot-path the daemon restores its
// pool at boot and persists it (fsync-durably) periodically and at
// shutdown; with -autoscale it resizes itself from observed load. The client package (nodesampling/client)
// speaks the stream protocol, optionally surviving daemon restarts with
// automatic backoff-and-resubscribe:
//
//	c, _ := client.DialWithOptions("127.0.0.1:7947", client.DialOptions{Reconnect: true})
//	out, _ := c.SubscribeEvery(1024, 4) // every 4th σ′ draw
//	c.PushBatch(ids)       // σ  upstream
//	for id := range out {  // σ′ downstream
//	    ...
//	}
package nodesampling
